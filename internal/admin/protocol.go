// Package admin implements the overcastd admin protocol: a local RPC surface
// over a unix socket through which clients join and leave sessions, trigger
// rebalances, and read allocations and counters from a long-running
// Allocator daemon.
//
// The wire format is newline-delimited JSON frames. Every request and every
// response carries an explicit protocol version field ("v": 1); frames with
// any other version are rejected with ErrCodeBadVersion, so the protocol can
// evolve without silent misdecodes — and because the envelope is a plain
// (version, id, op, typed-body) record, moving the same message catalogue
// onto a different codec or transport (gRPC, length-prefixed binary) is a
// codec swap, not a redesign.
//
// Sessions cross the wire as daemon-issued uint64 tokens, not library
// SessionID handles: tokens are stable across daemon restarts (the state
// snapshot persists them), while handles are an in-process concept. Token 0
// is invalid, mirroring the zero SessionID.
//
// The exported types of this package ARE the wire surface; ADMIN_SURFACE.txt
// inventories them the same way API_SURFACE.txt gates the root package, so
// any wire-visible change must show up in review.
package admin

import (
	"encoding/json"
	"fmt"

	"overcast"
)

// ProtocolVersion is the admin wire-protocol version this package speaks.
// Frames carrying any other "v" are rejected.
const ProtocolVersion = 1

// MaxFrameBytes bounds a single request or response frame. Frames beyond the
// limit are rejected rather than buffered (the admin socket is a control
// plane, not a bulk channel); snapshot responses of very large populations
// are the one legitimate big frame, so the ceiling is generous.
const MaxFrameBytes = 8 << 20

// Request ops.
const (
	// OpPing checks liveness and protocol agreement.
	OpPing = "ping"
	// OpJoin admits a session (params in Request.Join).
	OpJoin = "join"
	// OpLeave removes a session by token (params in Request.Leave).
	OpLeave = "leave"
	// OpRebalance refreshes the fair allocation and returns per-session
	// placements.
	OpRebalance = "rebalance"
	// OpSnapshot returns the current allocation (params in Request.Snapshot).
	OpSnapshot = "snapshot"
	// OpStats returns allocator + daemon counters.
	OpStats = "stats"
	// OpMetrics returns the counters as Prometheus text exposition format.
	OpMetrics = "metrics"
	// OpDrain asks the daemon to shut down gracefully: stop accepting work,
	// persist a final state snapshot, and exit.
	OpDrain = "drain"
	// OpFault injects an underlay fault — link failure, link recovery, or
	// capacity drift — into the daemon's network (params in Request.Fault).
	// The capacity change propagates to the allocator's length ledger and the
	// next refresh re-solves from cold; an effective fault advances the
	// allocator epoch, so watch streams see one frame per fault.
	OpFault = "fault"
	// OpWatch converts the connection into a one-way event stream: the
	// server immediately pushes the current epoch and materialized
	// allocation, then one frame per allocator-epoch change (params in
	// Request.Watch, optional). The stream ends with a terminal error frame
	// — ErrCodeDraining on daemon shutdown, ErrCodeSlowConsumer when the
	// client fell too far behind — after which the server closes the
	// connection; no further requests are read from it.
	OpWatch = "watch"
)

// Error codes carried on failed responses (Response.Code).
const (
	// ErrCodeBadVersion rejects a frame whose "v" is not ProtocolVersion.
	ErrCodeBadVersion = "bad-version"
	// ErrCodeBadFrame rejects a frame that is not a well-formed request.
	ErrCodeBadFrame = "bad-frame"
	// ErrCodeUnknownOp rejects a well-formed request with an unknown op.
	ErrCodeUnknownOp = "unknown-op"
	// ErrCodeBadParams rejects a request missing or malforming its op's
	// parameter body.
	ErrCodeBadParams = "bad-params"
	// ErrCodeUnknownSession rejects a token that names no live session.
	ErrCodeUnknownSession = "unknown-session"
	// ErrCodeAdmission rejects a join the admission policy refused; the
	// join has been rolled back exactly and the allocator is unchanged.
	ErrCodeAdmission = "admission-rejected"
	// ErrCodeDraining rejects mutations while the daemon drains, and
	// terminates watch streams when a drain starts.
	ErrCodeDraining = "draining"
	// ErrCodeSlowConsumer terminates a watch stream whose client fell more
	// than the server's event buffer behind; the client should reconnect
	// and resync from the new stream's initial snapshot frame.
	ErrCodeSlowConsumer = "slow-consumer"
	// ErrCodeInternal reports an allocator or daemon failure.
	ErrCodeInternal = "internal"
)

// Request is one admin RPC call. Exactly one of the op-specific parameter
// bodies may be set, matching Op; ops without parameters carry none.
type Request struct {
	// V is the protocol version; must equal ProtocolVersion.
	V int `json:"v"`
	// ID is an opaque client-chosen correlation id echoed on the response.
	ID uint64 `json:"id"`
	// Op selects the operation (the Op* constants).
	Op string `json:"op"`

	Join     *JoinParams     `json:"join,omitempty"`
	Leave    *LeaveParams    `json:"leave,omitempty"`
	Snapshot *SnapshotParams `json:"snapshot,omitempty"`
	Fault    *FaultParams    `json:"fault,omitempty"`
	Watch    *WatchParams    `json:"watch,omitempty"`
}

// JoinParams admits one session.
type JoinParams struct {
	// Members lists the session's nodes; Members[0] is the source.
	Members []int `json:"members"`
	// Demand is the session's desired rate.
	Demand float64 `json:"demand"`
}

// LeaveParams removes one session.
type LeaveParams struct {
	// Session is the daemon-issued token from the join response.
	Session uint64 `json:"session"`
}

// Fault kinds (FaultParams.Kind).
const (
	// FaultLinkDown fails a link: its capacity collapses to a vanishing
	// fraction of the healthy value. Overlapping failures nest.
	FaultLinkDown = "link-down"
	// FaultLinkUp recovers a failed link (no-op on a healthy one).
	FaultLinkUp = "link-up"
	// FaultDrift multiplies the link's healthy capacity by Factor.
	FaultDrift = "drift"
)

// FaultParams injects one underlay fault.
type FaultParams struct {
	// From and To name the physical link's endpoint nodes
	// (order-insensitive).
	From int `json:"from"`
	To   int `json:"to"`
	// Kind selects the mutation (the Fault* constants).
	Kind string `json:"kind"`
	// Factor is the capacity multiplier for drift faults (> 0); ignored for
	// link-down/link-up.
	Factor float64 `json:"factor,omitempty"`
}

// FaultResult reports the applied fault.
type FaultResult struct {
	// From/To/Kind echo the request.
	From int    `json:"from"`
	To   int    `json:"to"`
	Kind string `json:"kind"`
	// Capacity is the link's capacity after the fault.
	Capacity float64 `json:"capacity"`
	// Epoch is the allocator epoch after the fault (unchanged when the fault
	// was a no-op, e.g. recovering a healthy link).
	Epoch uint64 `json:"epoch"`
	// UnderlayEvents is the allocator's cumulative effective-fault count.
	UnderlayEvents int `json:"underlay_events"`
}

// SnapshotParams controls a snapshot read.
type SnapshotParams struct {
	// Refresh forces an incremental re-solve before reading (serialized
	// with mutations). The default serves the daemon's last materialized
	// allocation without touching the allocator — a concurrent read.
	Refresh bool `json:"refresh,omitempty"`
}

// WatchParams controls a watch stream. The body is optional; the zero value
// keeps the defaults.
type WatchParams struct {
	// HeartbeatSeconds is the idle-heartbeat interval: with no epoch change
	// for this long, the server pushes a Heartbeat frame so the client can
	// tell an idle daemon from a dead connection. 0 means the server
	// default (30s); negative is rejected with ErrCodeBadParams.
	HeartbeatSeconds float64 `json:"heartbeat_seconds,omitempty"`
}

// WatchEvent is one frame of a watch stream.
type WatchEvent struct {
	// Seq numbers the stream's frames from 1 (the initial snapshot frame)
	// with no gaps; a gap can only be a client-side bug, since the server
	// terminates (ErrCodeSlowConsumer) rather than skip.
	Seq uint64 `json:"seq"`
	// Epoch is the allocator epoch as of this event. The initial frame
	// carries the epoch at subscribe time; subsequent frames one epoch
	// change each, in order.
	Epoch uint64 `json:"epoch"`
	// Heartbeat marks an idle keep-alive frame (no epoch change; Snapshot
	// repeats the last materialized allocation).
	Heartbeat bool `json:"heartbeat,omitempty"`
	// Snapshot is the daemon's last materialized allocation, nil before the
	// first allocation materializes. Its own Epoch field records when it
	// was materialized, which lags the event Epoch when the change that
	// fired the event (a join or leave) did not itself re-solve.
	Snapshot *SnapshotResult `json:"snapshot,omitempty"`
}

// Response is one admin RPC reply. OK discriminates: on success the Op's
// result body is set; on failure Code and Error describe the rejection.
type Response struct {
	// V is the protocol version; always ProtocolVersion.
	V int `json:"v"`
	// ID echoes the request's correlation id (0 when the request was too
	// malformed to recover one).
	ID uint64 `json:"id"`
	// OK reports success.
	OK bool `json:"ok"`
	// Code is a machine-readable error class (the ErrCode* constants);
	// Error is the human-readable message. Both empty on success.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`

	Ping      *PingResult      `json:"ping,omitempty"`
	Join      *JoinResult      `json:"join,omitempty"`
	Leave     *LeaveResult     `json:"leave,omitempty"`
	Rebalance *RebalanceResult `json:"rebalance,omitempty"`
	Snapshot  *SnapshotResult  `json:"snapshot,omitempty"`
	Stats     *StatsResult     `json:"stats,omitempty"`
	Metrics   *MetricsResult   `json:"metrics,omitempty"`
	Drain     *DrainResult     `json:"drain,omitempty"`
	Fault     *FaultResult     `json:"fault,omitempty"`
	Watch     *WatchEvent      `json:"watch,omitempty"`
}

// PingResult acknowledges liveness.
type PingResult struct {
	// Protocol is the server's protocol version (ProtocolVersion).
	Protocol int `json:"protocol"`
	// Draining reports whether the daemon is shutting down.
	Draining bool `json:"draining,omitempty"`
}

// WireTree is one overlay tree with its allocated rate.
type WireTree struct {
	// Pairs are the overlay edges as (i,j) member-index pairs.
	Pairs [][2]int `json:"pairs"`
	// Rate is the flow carried by this tree.
	Rate float64 `json:"rate"`
	// Hops is the total physical link traversals.
	Hops int `json:"hops"`
}

// WirePlacement is the epoch-stamped placement of one session.
type WirePlacement struct {
	// Session is the daemon-issued token.
	Session uint64 `json:"session"`
	// Epoch stamps the allocator epoch the placement was computed at.
	Epoch uint64 `json:"epoch"`
	// Rate is the session's feasible rate under the placement.
	Rate float64 `json:"rate"`
	// Members lists the session's nodes (Members[0] is the source); tree
	// pairs index this slice.
	Members []int `json:"members"`
	// Tree is the primary tree; Trees every tree carrying flow.
	Tree  WireTree   `json:"tree"`
	Trees []WireTree `json:"trees,omitempty"`
}

// JoinResult reports an admitted session.
type JoinResult struct {
	Placement WirePlacement `json:"placement"`
}

// LeaveResult acknowledges a departure.
type LeaveResult struct {
	// Session echoes the departed token.
	Session uint64 `json:"session"`
	// Active is the post-departure active-session count.
	Active int `json:"active"`
}

// RebalanceResult reports the refreshed placements of every active session,
// in admission order.
type RebalanceResult struct {
	Epoch      uint64          `json:"epoch"`
	Placements []WirePlacement `json:"placements"`
}

// WireAllocation is one session's slice of a snapshot.
type WireAllocation struct {
	// Session is the daemon-issued token.
	Session uint64 `json:"session"`
	// Demand and Rate are the session's desired and allocated rates.
	Demand float64 `json:"demand"`
	Rate   float64 `json:"rate"`
	// Members lists the session's nodes; tree pairs index this slice.
	Members []int `json:"members"`
	// Trees lists every tree carrying flow for the session.
	Trees []WireTree `json:"trees,omitempty"`
}

// SnapshotResult is the daemon's current ε-feasible fair allocation.
type SnapshotResult struct {
	// Epoch is the allocator epoch the allocation was materialized at.
	Epoch uint64 `json:"epoch"`
	// Restored marks an allocation served from the on-disk state snapshot
	// after a restart, before any fresh refresh has run.
	Restored bool `json:"restored,omitempty"`
	// Sessions lists the active sessions' allocations in admission order.
	Sessions []WireAllocation `json:"sessions"`
	// Throughput is Σ_i (|S_i|-1)·rate_i; MinRate the smallest session
	// rate; MaxCongestion the maximum link load/capacity ratio.
	Throughput    float64 `json:"throughput"`
	MinRate       float64 `json:"min_rate"`
	MaxCongestion float64 `json:"max_congestion"`
}

// DaemonStats counts the daemon's own work, alongside the allocator's.
type DaemonStats struct {
	// RPCs counts served requests by op (failed ones included).
	RPCs map[string]int `json:"rpcs"`
	// AdmissionRejected counts joins refused by the admission policy.
	AdmissionRejected int `json:"admission_rejected"`
	// SnapshotsSaved counts state snapshots persisted to disk; Restored
	// reports whether this daemon process recovered from one.
	SnapshotsSaved int  `json:"snapshots_saved"`
	Restored       bool `json:"restored,omitempty"`
	// UptimeSeconds is the time since the daemon started serving.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Draining reports whether the daemon is shutting down.
	Draining bool `json:"draining,omitempty"`
}

// StatsResult reports live counters.
type StatsResult struct {
	// Active and Admitted count sessions; Epoch is the allocator epoch;
	// MaxCongestion the current online congestion.
	Active        int     `json:"active"`
	Admitted      int     `json:"admitted"`
	Epoch         uint64  `json:"epoch"`
	MaxCongestion float64 `json:"max_congestion"`
	// Allocator wraps the library's work counters (including the shared
	// SSSP plane and warm-repair counters, overcast.AllocatorStats.Plane).
	Allocator overcast.AllocatorStats `json:"allocator"`
	// Daemon wraps the daemon-level counters.
	Daemon DaemonStats `json:"daemon"`
}

// MetricsResult carries the Prometheus text exposition of StatsResult.
type MetricsResult struct {
	Text string `json:"text"`
}

// DrainResult acknowledges a graceful-shutdown request.
type DrainResult struct {
	// Active is the number of sessions the final state snapshot will carry.
	Active int `json:"active"`
}

// EncodeFrame marshals v as one newline-terminated JSON frame.
func EncodeFrame(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("admin: encode frame: %w", err)
	}
	if len(b)+1 > MaxFrameBytes {
		return nil, fmt.Errorf("admin: frame of %d bytes exceeds MaxFrameBytes", len(b)+1)
	}
	return append(b, '\n'), nil
}

// FrameError is a request decode failure, classified by the ErrCode* code a
// server should reject the frame with. ID carries the request's correlation
// id when it could be recovered from the malformed frame.
type FrameError struct {
	Code string
	ID   uint64
	Msg  string
}

// Error implements error.
func (e *FrameError) Error() string { return "admin: " + e.Msg }

// DecodeRequest parses and validates one request frame (without the trailing
// newline). Failures are *FrameError carrying the rejection code: malformed
// JSON, a version other than ProtocolVersion, an unknown op, or a missing
// parameter body for ops that require one.
func DecodeRequest(line []byte) (*Request, error) {
	if len(line) > MaxFrameBytes {
		return nil, &FrameError{Code: ErrCodeBadFrame, Msg: "request frame too large"}
	}
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return nil, &FrameError{Code: ErrCodeBadFrame, Msg: fmt.Sprintf("malformed request frame: %v", err)}
	}
	if req.V != ProtocolVersion {
		return nil, &FrameError{Code: ErrCodeBadVersion, ID: req.ID,
			Msg: fmt.Sprintf("protocol version %d, want %d", req.V, ProtocolVersion)}
	}
	switch req.Op {
	case OpPing, OpRebalance, OpSnapshot, OpStats, OpMetrics, OpDrain:
		// Parameterless (Snapshot's body is optional).
	case OpWatch:
		// Body optional; a negative heartbeat is the one malformed shape.
		if req.Watch != nil && req.Watch.HeartbeatSeconds < 0 {
			return nil, &FrameError{Code: ErrCodeBadParams, ID: req.ID,
				Msg: fmt.Sprintf("watch heartbeat_seconds %v is negative", req.Watch.HeartbeatSeconds)}
		}
	case OpJoin:
		if req.Join == nil {
			return nil, &FrameError{Code: ErrCodeBadParams, ID: req.ID, Msg: `join request missing "join" params`}
		}
	case OpLeave:
		if req.Leave == nil {
			return nil, &FrameError{Code: ErrCodeBadParams, ID: req.ID, Msg: `leave request missing "leave" params`}
		}
	case OpFault:
		if req.Fault == nil {
			return nil, &FrameError{Code: ErrCodeBadParams, ID: req.ID, Msg: `fault request missing "fault" params`}
		}
		switch req.Fault.Kind {
		case FaultLinkDown, FaultLinkUp:
		case FaultDrift:
			if req.Fault.Factor <= 0 {
				return nil, &FrameError{Code: ErrCodeBadParams, ID: req.ID,
					Msg: fmt.Sprintf("drift fault factor %v must be positive", req.Fault.Factor)}
			}
		default:
			return nil, &FrameError{Code: ErrCodeBadParams, ID: req.ID,
				Msg: fmt.Sprintf("unknown fault kind %q", req.Fault.Kind)}
		}
	default:
		return nil, &FrameError{Code: ErrCodeUnknownOp, ID: req.ID, Msg: fmt.Sprintf("unknown op %q", req.Op)}
	}
	return &req, nil
}

// DecodeResponse parses and version-checks one response frame (without the
// trailing newline).
func DecodeResponse(line []byte) (*Response, error) {
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("admin: malformed response frame: %w", err)
	}
	if resp.V != ProtocolVersion {
		return nil, fmt.Errorf("admin: response protocol version %d, want %d", resp.V, ProtocolVersion)
	}
	return &resp, nil
}
