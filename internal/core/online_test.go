package core_test

import (
	"testing"
	"testing/quick"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

func TestOnlineValidation(t *testing.T) {
	net, _ := topology.Ring(5, 10)
	if _, err := core.NewOnline(net.Graph, 0); err == nil {
		t.Error("mu=0 accepted")
	}
	o, err := core.NewOnline(net.Graph, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Finalize(); err == nil {
		t.Error("finalize with no sessions accepted")
	}
}

func TestOnlineSingleSessionSaturates(t *testing.T) {
	// One 2-member session on a path: its tree is the path; finalized rate
	// must equal the path capacity.
	net, _ := topology.Path(4, 10)
	g := net.Graph
	s, _ := overlay.NewSession(0, []graph.NodeID{0, 3}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	oracle, err := overlay.NewFixedOracle(g, rt, s)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := core.NewOnline(g, 10)
	if _, err := o.Join(oracle); err != nil {
		t.Fatal(err)
	}
	sol, err := o.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if r := sol.SessionRate(0); r < 10-1e-9 || r > 10+1e-9 {
		t.Fatalf("finalized rate %v, want 10", r)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineSpreadsLoadAcrossRing(t *testing.T) {
	// Ring of 4: two identical sessions {0,2}. Under arbitrary routing the
	// second arrival must take the other side of the ring because the first
	// inflated its side. (Fixed IP routing could not detour a 2-member
	// session — its route is pinned.)
	net, _ := topology.Ring(4, 10)
	g := net.Graph
	o, _ := core.NewOnline(g, 10)
	var trees []*overlay.Tree
	for i := 0; i < 2; i++ {
		s, _ := overlay.NewSession(i, []graph.NodeID{0, 2}, 1)
		oracle, err := overlay.NewArbitraryOracle(g, s)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := o.Join(oracle)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	if trees[0].Key() == trees[1].Key() {
		// Keys embed session IDs, so compare physical edges instead.
		t.Log("keys differ by construction; checking edges")
	}
	firstEdges := map[graph.EdgeID]bool{}
	for _, u := range trees[0].Use() {
		firstEdges[u.Edge] = true
	}
	overlap := 0
	for _, u := range trees[1].Use() {
		if firstEdges[u.Edge] {
			overlap++
		}
	}
	if overlap != 0 {
		t.Fatalf("second session overlapped %d edges instead of detouring", overlap)
	}
	sol, err := o.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// Both sessions get the full 10/2-hop side: rate 10 each.
	for i := 0; i < 2; i++ {
		if r := sol.SessionRate(i); r < 10-1e-9 {
			t.Fatalf("session %d rate %v, want 10", i, r)
		}
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineFeasibilityProperty(t *testing.T) {
	// The per-session l^i_max scaling must be feasible for any arrival
	// sequence, topology seed, and mu.
	check := func(seed uint64, muRaw uint8, nRaw uint8) bool {
		r := rng.New(seed)
		net, err := topology.Waxman(topology.DefaultWaxman(30), r)
		if err != nil {
			return false
		}
		g := net.Graph
		mu := float64(muRaw%200) + 1
		arrivals := int(nRaw%6) + 2
		all := make([]graph.NodeID, g.NumNodes())
		for i := range all {
			all[i] = i
		}
		rt := routing.NewIPRoutes(g, all)
		o, err := core.NewOnline(g, mu)
		if err != nil {
			return false
		}
		for i := 0; i < arrivals; i++ {
			size := 2 + r.Intn(4)
			members := r.Sample(g.NumNodes(), size)
			s, err := overlay.NewSession(i, members, 1+float64(r.Intn(3)))
			if err != nil {
				return false
			}
			oracle, err := overlay.NewFixedOracle(g, rt, s)
			if err != nil {
				return false
			}
			if _, err := o.Join(oracle); err != nil {
				return false
			}
		}
		if o.NumSessions() != arrivals || o.MSTOps() != arrivals {
			return false
		}
		sol, err := o.Finalize()
		if err != nil {
			return false
		}
		return sol.CheckFeasible(1e-9) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineApproachesOfflineOptimum(t *testing.T) {
	// Replicating each session n times and summing the finalized replica
	// rates must approach the MaxFlow bound as n grows (Fig. 5 behaviour).
	r := rng.New(71)
	net, err := topology.Waxman(topology.DefaultWaxman(40), r)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	perm := r.Perm(40)
	base := [][]graph.NodeID{perm[0:5], perm[5:9]}
	p := buildProblem(t, g, base, nil, core.RoutingIP)
	opt, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var members []graph.NodeID
	for _, m := range base {
		members = append(members, m...)
	}
	rt := routing.NewIPRoutes(g, members)

	run := func(n int) float64 {
		o, _ := core.NewOnline(g, 30)
		id := 0
		for rep := 0; rep < n; rep++ {
			for _, m := range base {
				s, _ := overlay.NewSession(id, m, 1)
				oracle, err := overlay.NewFixedOracle(g, rt, s)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := o.Join(oracle); err != nil {
					t.Fatal(err)
				}
				id++
			}
		}
		sol, err := o.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if err := sol.CheckFeasible(1e-9); err != nil {
			t.Fatal(err)
		}
		return sol.OverallThroughput()
	}
	t1 := run(1)
	t20 := run(20)
	if t20 < t1 {
		t.Fatalf("throughput decreased with more trees: %v -> %v", t1, t20)
	}
	if t20 < 0.5*opt.OverallThroughput() {
		t.Fatalf("online with 20 trees reached only %v of optimal %v", t20, opt.OverallThroughput())
	}
	if t20 > opt.OverallThroughput()*1.01 {
		t.Fatalf("online throughput %v exceeds offline optimum %v", t20, opt.OverallThroughput())
	}
}
