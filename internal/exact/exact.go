// Package exact solves the paper's M1 and M2 programs to optimality on
// small instances by explicit tree enumeration (Prüfer sequences) plus the
// dense simplex. The paper notes M1'/M2' are solvable by the ellipsoid
// method; exact optimality — not the polynomial bound — is what the library
// needs from this component, since its sole purpose is to provide ground
// truth against which the FPTAS implementations (internal/core) are
// validated. Session sizes are limited by |S|^(|S|-2) tree enumeration;
// sizes up to 6 (1296 trees) stay comfortably fast.
package exact

import (
	"fmt"

	"overcast/internal/graph"
	"overcast/internal/lp"
	"overcast/internal/overlay"
)

// Result is an exact optimum of M1 or M2.
type Result struct {
	// Value is the optimal objective: the weighted aggregate flow for M1,
	// the concurrent ratio lambda for M2.
	Value float64
	// SessionRates[i] is the total rate routed for session i at optimum.
	SessionRates []float64
	// Trees[i] lists the session's enumerated trees; Rates[i][j] is the
	// optimal rate on Trees[i][j] (may be zero).
	Trees [][]*overlay.Tree
	Rates [][]float64
}

// enumerate materializes all trees of every session and the per-edge usage
// columns. Only physical edges actually used by some tree get a MaxN
// capacity row.
type enumeration struct {
	trees    [][]*overlay.Tree
	varOf    [][]int // varOf[i][j] = LP variable index of tree j of session i
	numVars  int
	edgeRows map[graph.EdgeID]int
	useCols  [][]struct {
		row   int
		count float64
	}
}

func enumerateAll(oracles []*overlay.FixedOracle, maxN int) (*enumeration, error) {
	en := &enumeration{edgeRows: make(map[graph.EdgeID]int)}
	for _, o := range oracles {
		trees, err := overlay.AllTrees(o, maxN)
		if err != nil {
			return nil, fmt.Errorf("exact: session %d: %w", o.Session().ID, err)
		}
		en.trees = append(en.trees, trees)
		vars := make([]int, len(trees))
		for j, t := range trees {
			vars[j] = en.numVars
			en.numVars++
			var col []struct {
				row   int
				count float64
			}
			for _, u := range t.Use() {
				row, ok := en.edgeRows[u.Edge]
				if !ok {
					row = len(en.edgeRows)
					en.edgeRows[u.Edge] = row
				}
				col = append(col, struct {
					row   int
					count float64
				}{row, float64(u.Count)})
			}
			en.useCols = append(en.useCols, col)
		}
		en.varOf = append(en.varOf, vars)
	}
	return en, nil
}

// MaxMulticommodityFlow solves M1 exactly: maximize
// sum_i (|S_i|-1)/(|Smax|-1) * rate_i subject to capacities.
func MaxMulticommodityFlow(g *graph.Graph, oracles []*overlay.FixedOracle, maxN int) (*Result, error) {
	en, err := enumerateAll(oracles, maxN)
	if err != nil {
		return nil, err
	}
	smax := 0
	for _, o := range oracles {
		if r := o.Session().Receivers(); r > smax {
			smax = r
		}
	}
	p := lp.Problem{C: make([]float64, en.numVars)}
	for i, o := range oracles {
		w := float64(o.Session().Receivers()) / float64(smax)
		for _, v := range en.varOf[i] {
			p.C[v] = w
		}
	}
	p.A, p.B = capacityRows(g, en, 0)
	res, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("exact: M1 LP: %w", err)
	}
	return extract(res, en, oracles, res.Value), nil
}

// MaxConcurrentFlow solves M2 exactly: maximize lambda subject to
// rate_i >= lambda*dem(i) and capacities. The lambda variable is the last
// LP column.
func MaxConcurrentFlow(g *graph.Graph, oracles []*overlay.FixedOracle, maxN int) (*Result, error) {
	en, err := enumerateAll(oracles, maxN)
	if err != nil {
		return nil, err
	}
	nv := en.numVars + 1 // + lambda
	lambdaVar := en.numVars
	p := lp.Problem{C: make([]float64, nv)}
	p.C[lambdaVar] = 1
	capA, capB := capacityRows(g, en, 1)
	p.A, p.B = capA, capB
	// Demand rows: dem(i)*lambda - sum_j f_ij <= 0.
	for i, o := range oracles {
		row := make([]float64, nv)
		row[lambdaVar] = o.Session().Demand
		for _, v := range en.varOf[i] {
			row[v] = -1
		}
		p.A = append(p.A, row)
		p.B = append(p.B, 0)
	}
	res, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("exact: M2 LP: %w", err)
	}
	return extract(res, en, oracles, res.X[lambdaVar]), nil
}

// capacityRows builds one row per used physical edge; extra reserves extra
// trailing columns (for lambda).
func capacityRows(g *graph.Graph, en *enumeration, extra int) ([][]float64, []float64) {
	rows := make([][]float64, len(en.edgeRows))
	b := make([]float64, len(en.edgeRows))
	width := en.numVars + extra
	for e, r := range en.edgeRows {
		rows[r] = make([]float64, width)
		b[r] = g.Edges[e].Capacity
	}
	for v, col := range en.useCols {
		for _, c := range col {
			rows[c.row][v] = c.count
		}
	}
	return rows, b
}

func extract(res *lp.Result, en *enumeration, oracles []*overlay.FixedOracle, value float64) *Result {
	out := &Result{Value: value, Trees: en.trees}
	for i := range oracles {
		rates := make([]float64, len(en.trees[i]))
		total := 0.0
		for j, v := range en.varOf[i] {
			rates[j] = res.X[v]
			total += res.X[v]
		}
		out.Rates = append(out.Rates, rates)
		out.SessionRates = append(out.SessionRates, total)
	}
	return out
}
