// Command overcast runs the library's solvers on a generated topology with
// randomly placed sessions and prints an allocation report.
//
// Usage:
//
//	overcast [-nodes N] [-capacity C] [-seed S] [-sessions "7,5"]
//	         [-demand D] [-alg maxflow|mcf|online|single|splitstream]
//	         [-ratio R] [-routing ip|arbitrary] [-mu MU] [-simulate]
//
// Example:
//
//	overcast -nodes 100 -sessions 7,5 -alg mcf -ratio 0.95 -simulate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"overcast"
	"overcast/internal/rng"
)

func main() {
	nodes := flag.Int("nodes", 100, "topology size (BRITE-style Waxman)")
	capacity := flag.Float64("capacity", 100, "uniform link capacity")
	seed := flag.Uint64("seed", 1, "random seed (topology and session placement)")
	sessionSpec := flag.String("sessions", "7,5", "comma-separated session sizes")
	demand := flag.Float64("demand", 100, "per-session demand")
	alg := flag.String("alg", "maxflow", "maxflow | mcf | online | single | splitstream")
	ratio := flag.Float64("ratio", 0.95, "approximation ratio for maxflow/mcf")
	routingFlag := flag.String("routing", "ip", "ip | arbitrary")
	mu := flag.Float64("mu", 30, "online algorithm step size")
	simulate := flag.Bool("simulate", false, "replay the allocation on the fluid simulator")
	flag.Parse()

	if err := run(*nodes, *capacity, *seed, *sessionSpec, *demand, *alg, *ratio, *routingFlag, *mu, *simulate); err != nil {
		fmt.Fprintln(os.Stderr, "overcast:", err)
		os.Exit(1)
	}
}

func run(nodes int, capacity float64, seed uint64, sessionSpec string, demand float64,
	alg string, ratio float64, routingFlag string, mu float64, simulate bool) error {

	sizes, err := parseSizes(sessionSpec)
	if err != nil {
		return err
	}
	net, err := overcast.WaxmanNetwork(nodes, capacity, seed)
	if err != nil {
		return err
	}
	fmt.Printf("network: %s, %d nodes, %d links, total capacity %.0f\n",
		net.Name(), net.Nodes(), net.Links(), net.TotalCapacity())

	sessions, err := placeSessions(net, sizes, demand, seed)
	if err != nil {
		return err
	}
	for i, s := range sessions {
		fmt.Printf("session %d: source %d, %d receivers, demand %.0f\n",
			i, s.Members[0], len(s.Members)-1, s.Demand)
	}

	routing := overcast.RoutingIP
	if routingFlag == "arbitrary" {
		routing = overcast.RoutingArbitrary
	}

	var alloc *overcast.Allocation
	switch alg {
	case "online":
		on, err := overcast.NewOnlineAllocator(net, mu, routing)
		if err != nil {
			return err
		}
		for i, s := range sessions {
			if _, err := on.Join(s); err != nil {
				return err
			}
			fmt.Printf("joined session %d, current max congestion %.3f\n", i, on.MaxCongestion())
		}
		alloc, err = on.Finalize()
		if err != nil {
			return err
		}
	default:
		sys, err := overcast.NewSystem(net, sessions, routing)
		if err != nil {
			return err
		}
		switch alg {
		case "maxflow":
			alloc, err = sys.MaxFlow(ratio)
		case "mcf":
			var fair *overcast.FairAllocation
			fair, err = sys.MaxConcurrentFlow(ratio, true)
			if err == nil {
				fmt.Printf("fair share lambda = %.4f\n", fair.Lambda)
				alloc = fair.Allocation
			}
		case "single":
			alloc, err = sys.SingleTreeBaseline()
		case "splitstream":
			alloc, err = sys.SplitStreamBaseline()
		default:
			return fmt.Errorf("unknown algorithm %q", alg)
		}
		if err != nil {
			return err
		}
	}

	if err := alloc.Verify(); err != nil {
		return fmt.Errorf("allocation failed verification: %w", err)
	}
	fmt.Printf("\nallocation (%s, %s routing):\n", alg, routingFlag)
	for i := range sessions {
		fmt.Printf("  session %d: rate %.2f over %d trees\n", i, alloc.SessionRate(i), alloc.TreeCount(i))
	}
	fmt.Printf("  overall throughput: %.2f\n", alloc.OverallThroughput())
	fmt.Printf("  max link congestion: %.3f\n", alloc.MaxCongestion())
	fmt.Printf("  spanning-tree ops: %d\n", alloc.SpanningTreeOps())

	if simulate {
		rep, err := alloc.Simulate(100, 0.1)
		if err != nil {
			return err
		}
		fmt.Println("\nfluid simulation (100 steps x 0.1s):")
		for i := range sessions {
			fmt.Printf("  session %d: offered %.2f, delivered %.2f\n",
				i, rep.OfferedRate[i], rep.DeliveredRate[i])
		}
		fmt.Printf("  peak link utilization: %.3f\n", rep.PeakLinkUtilization)
	}
	return nil
}

func parseSizes(spec string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad session size %q (need integers >= 2)", part)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sessions specified")
	}
	return sizes, nil
}

func placeSessions(net *overcast.Network, sizes []int, demand float64, seed uint64) ([]overcast.Session, error) {
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total > net.Nodes() {
		return nil, fmt.Errorf("%d session members exceed %d nodes", total, net.Nodes())
	}
	perm := rng.New(seed ^ 0x5e55).Perm(net.Nodes())
	var sessions []overcast.Session
	off := 0
	for _, sz := range sizes {
		sessions = append(sessions, overcast.Session{Members: perm[off : off+sz], Demand: demand})
		off += sz
	}
	return sessions, nil
}
