package experiments

// The fault tier is the robustness harness: it threads seeded underlay fault
// events (link failures, recoveries, capacity drift) through live solver
// state and checks that every ledger consumer degrades deterministically.
//
// FaultSolveRun drives the runner layer directly — a persistent
// overlay.BatchRunner or shard.Group over one long-lived LengthStore, with
// Garg–Könemann-style multiplicative length updates between rounds and fault
// events injected mid-stream. Its fingerprint covers solver *outputs* only
// (tree identities and lengths), never counters, so one scenario replayed
// across workers x shards x plane/repair toggles must produce bit-identical
// fingerprints while the robustness counters (plane non-monotone refills,
// shard fault resyncs) vary with the toggles.
//
// FaultChurnRun replays session churn interleaved with a link flap trace
// through the public Allocator surface — optionally filtered through the
// route-flap Damper, whose suppression demonstrably bounds the fault-driven
// cold re-solve work under oscillation.

import (
	"fmt"
	"hash/fnv"
	"time"

	"overcast"
	"overcast/internal/churn"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/shard"
	"overcast/internal/topology"
	"overcast/internal/underlay"
)

// FaultSolveConfig describes one runner-layer fault replay.
type FaultSolveConfig struct {
	Nodes       int // topology size (>= 8)
	Sessions    int // competing sessions (>= 1)
	SessionSize int // members per session (default 4)
	// TwoLevelASes switches to the paper's two-level AS/router topology (the
	// natural shard partition); 0 keeps flat Waxman.
	TwoLevelASes int
	// Workers / DisablePlane / DisableRepair / DisableSubtreeRepair /
	// Shards are the wall-clock toggles under test: outputs must be
	// bit-identical across all of them.
	Workers              int
	DisablePlane         bool
	DisableRepair        bool
	DisableSubtreeRepair bool
	Shards               int
	// Rounds is the number of oracle rounds (default 10). Between rounds
	// every returned tree's edges take a multiplicative length bump of
	// (1 + BumpEpsilon·n_e), the Garg–Könemann update shape.
	Rounds      int
	BumpEpsilon float64 // default 0.25
	// FailRound / RecoverRound inject a LinkDown / LinkUp on the fault link
	// after those rounds (defaults 2 and 5; -1 disables). The recovery is
	// the non-monotone shrink that must degrade plane rows to full refills.
	FailRound    int
	RecoverRound int
	// DriftRound applies a capacity drift by DriftFactor after that round
	// (defaults 7 and 1.9; DriftRound -1 disables). A factor > 1 is another
	// shrink source.
	DriftRound  int
	DriftFactor float64
	// FaultStorm floods the ledger with more than graph.JournalWindow
	// touches before the final round — the burst that forces sharded
	// replicas off the journal-diff path onto full snapshot resyncs.
	FaultStorm bool
}

func (c *FaultSolveConfig) normalize() error {
	if c.Nodes < 8 {
		return fmt.Errorf("experiments: fault solve run needs >=8 nodes, got %d", c.Nodes)
	}
	if c.Sessions < 1 {
		return fmt.Errorf("experiments: fault solve run needs >=1 session, got %d", c.Sessions)
	}
	if c.SessionSize < 2 {
		c.SessionSize = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.BumpEpsilon <= 0 {
		c.BumpEpsilon = 0.25
	}
	if c.FailRound == 0 {
		c.FailRound = 2
	}
	if c.RecoverRound == 0 {
		c.RecoverRound = 5
	}
	if c.DriftRound == 0 {
		c.DriftRound = 7
	}
	if c.DriftFactor <= 0 {
		c.DriftFactor = 1.9
	}
	return nil
}

// FaultSolveReport summarizes one runner-layer fault replay.
type FaultSolveReport struct {
	Config FaultSolveConfig
	Edges  int
	Rounds int
	// UnderlayEvents counts the capacity-changing fault events applied.
	UnderlayEvents int
	// Fingerprint hashes the solver outputs: every round's tree identities
	// and lengths plus the final ledger, all at full float precision. It
	// must be identical across workers x shards x plane/repair toggles.
	Fingerprint string
	// Plane carries the runner's metrics; PlaneNonMonotone counts rows the
	// recovery shrink degraded to full refills (toggle-dependent, excluded
	// from the fingerprint).
	Plane overlay.Metrics
	// FaultResyncs / Resyncs are the shard group's counters (zero when
	// unsharded); FaultResyncs counts the journal-window-loss resyncs the
	// fault storm forces.
	FaultResyncs int
	Resyncs      int
	SolveTime    time.Duration
}

// String renders the report for cmd/experiments output.
func (r FaultSolveReport) String() string {
	return fmt.Sprintf("n=%-6d |E|=%-6d rounds=%-3d events=%-3d nonmono=%-4d faultresync=%-3d fp=%s solve=%v",
		r.Config.Nodes, r.Edges, r.Rounds, r.UnderlayEvents,
		r.Plane.PlaneNonMonotone, r.FaultResyncs, r.Fingerprint,
		r.SolveTime.Round(time.Millisecond))
}

// faultRunner is the slice of the oracle-runner contract the harness drives
// (satisfied by overlay.BatchRunner and shard.Group alike).
type faultRunner interface {
	MinTreesLen(ls *graph.LengthStore, ids []int) []overlay.BatchResult
	Metrics() overlay.Metrics
	Close()
}

// FaultSolveRun replays the configured fault scenario against a persistent
// runner: Rounds oracle rounds over one LengthStore, Garg–Könemann length
// bumps between rounds, and fault events (mirrored onto the ledger as
// explicit, possibly non-monotone Bump mutations) after their configured
// rounds. Deterministic for a given (seed, scenario); the fingerprint is
// independent of Workers, Shards, DisablePlane, and DisableRepair.
func FaultSolveRun(seed uint64, cfg FaultSolveConfig) (*FaultSolveReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	si, err := NewScaleInstance(seed, ScaleConfig{
		Nodes: cfg.Nodes, Sessions: cfg.Sessions, SessionSize: cfg.SessionSize,
		Arbitrary: true, TwoLevelASes: cfg.TwoLevelASes,
	})
	if err != nil {
		return nil, err
	}
	g := si.Net.Graph
	if g.NumEdges() < 2 {
		return nil, fmt.Errorf("experiments: fault solve run needs >=2 edges")
	}

	var runner faultRunner
	var group *shard.Group
	if cfg.Shards > 0 {
		group = shard.NewGroup(g, si.Problem.Oracles, shard.Options{
			Shards:               cfg.Shards,
			Labels:               si.Net.ASOf,
			Workers:              cfg.Workers,
			SharedPlane:          !cfg.DisablePlane,
			DisableRepair:        cfg.DisableRepair,
			DisableSubtreeRepair: cfg.DisableSubtreeRepair,
			Dynamic:              true,
		})
		runner = group
	} else {
		runner = overlay.NewBatchRunnerOpts(g, si.Problem.Oracles, overlay.BatchOptions{
			Workers:              cfg.Workers,
			SharedPlane:          !cfg.DisablePlane,
			DisableRepair:        cfg.DisableRepair,
			DisableSubtreeRepair: cfg.DisableSubtreeRepair,
			Dynamic:              true,
		})
	}
	defer runner.Close()

	// The fault state rewrites capacities on the shared instance graph;
	// restore them so cached instances and later runs see the base topology.
	st := underlay.NewState(g)
	defer st.Restore()
	fault := func(ls *graph.LengthStore, ev underlay.Event) {
		if factor, changed := st.Apply(ev); changed {
			ls.Bump(ev.Edge, factor)
		}
	}

	h := fnv.New64a()
	ls := graph.NewLengthStore(g, 1)
	start := time.Now()
	for round := 0; round < cfg.Rounds; round++ {
		res := runner.MinTreesLen(ls, nil)
		for i, r := range res {
			if r.Err != nil {
				return nil, fmt.Errorf("experiments: fault solve round %d session %d: %w", round, i, r.Err)
			}
			fmt.Fprintf(h, "r%d s%d %x %.17g\n", round, i, r.Tree.KeyHash(), r.Len)
		}
		// Garg–Könemann-shaped price update: every edge a returned tree uses
		// grows by its multiplicity. Result order is batch-slot order and
		// Use() is edge-sorted, so the update sequence is deterministic.
		for _, r := range res {
			for _, u := range r.Tree.Use() {
				ls.Bump(u.Edge, 1+cfg.BumpEpsilon*float64(u.Count))
			}
		}
		switch round {
		case cfg.FailRound:
			fault(ls, underlay.Event{Kind: underlay.LinkDown, Edge: 0})
		case cfg.RecoverRound:
			fault(ls, underlay.Event{Kind: underlay.LinkUp, Edge: 0})
		}
		if round == cfg.DriftRound {
			fault(ls, underlay.Event{Kind: underlay.Drift, Edge: 1, Factor: cfg.DriftFactor})
		}
		if cfg.FaultStorm && round == cfg.Rounds-2 {
			// Flood the journal past its window: alternating whole-sweep
			// bumps keep every length within a factor of 2 of where it was
			// while discarding the window's oldest half many times over.
			m := g.NumEdges()
			for i := 0; i < graph.JournalWindow+m; i++ {
				if (i / m % 2) == 0 {
					ls.Bump(i%m, 2)
				} else {
					ls.Bump(i%m, 0.5)
				}
			}
		}
	}
	for e := 0; e < ls.Len(); e++ {
		fmt.Fprintf(h, "d%d %.17g\n", e, ls.Values()[e])
	}

	rep := &FaultSolveReport{
		Config: cfg, Edges: g.NumEdges(), Rounds: cfg.Rounds,
		UnderlayEvents: st.Applied,
		Fingerprint:    fmt.Sprintf("%016x", h.Sum64()),
		Plane:          runner.Metrics(),
		SolveTime:      time.Since(start),
	}
	if group != nil {
		gs := group.Stats()
		rep.FaultResyncs, rep.Resyncs = gs.FaultResyncs, gs.Resyncs
	}
	return rep, nil
}

// FaultChurnConfig describes one allocator-level churn-under-faults replay.
type FaultChurnConfig struct {
	Nodes int // Waxman topology size
	// Arrival process and uniform session-size range, as in WarmChurnConfig.
	ArrivalRate      float64
	MeanLifetime     float64
	Horizon          float64
	SizeMin, SizeMax int
	Demand           float64
	Mu               float64 // online step size (default 30)
	Epsilon          float64 // FPTAS error (default 0.1)
	Workers          int
	Shards           int
	// SnapshotEvery refreshes the fair allocation every N churn events
	// (default 4).
	SnapshotEvery int
	// FaultEdges is how many links the flap process covers (the first N edge
	// ids; default 8, clamped to the edge count). FailRate/MeanRepair are
	// the per-link Poisson fail intensity and exponential mean downtime
	// (defaults 0.8 and 0.5 — an aggressively flapping regime).
	FaultEdges int
	FailRate   float64
	MeanRepair float64
	// Damped filters the fault trace through the route-flap Damper before it
	// reaches the allocator: suppressed recoveries are held, bounding the
	// fault-driven cold re-solve work under oscillation.
	Damped bool
	// Damping overrides the damper constants (zero fields take the BGP-style
	// defaults).
	Damping underlay.DamperConfig
}

func (c *FaultChurnConfig) normalize() error {
	if c.Nodes < 8 {
		return fmt.Errorf("experiments: fault churn run needs >=8 nodes, got %d", c.Nodes)
	}
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 2
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = 12
	}
	if c.Horizon <= 0 {
		c.Horizon = 25
	}
	if c.SizeMin < 2 {
		c.SizeMin = 3
	}
	if c.SizeMax < c.SizeMin {
		c.SizeMax = c.SizeMin + 3
	}
	if c.Demand <= 0 {
		c.Demand = 1
	}
	if c.Mu <= 0 {
		c.Mu = 30
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4
	}
	if c.FaultEdges <= 0 {
		c.FaultEdges = 8
	}
	if c.FailRate <= 0 {
		c.FailRate = 0.8
	}
	if c.MeanRepair <= 0 {
		c.MeanRepair = 0.5
	}
	return nil
}

// FaultChurnReport summarizes one churn-under-faults replay.
type FaultChurnReport struct {
	Config          FaultChurnConfig
	Sessions        int
	PeakConcurrency int
	// TraceFaults is the raw fault-trace length; AppliedFaults the events
	// that reached the allocator after damping (equal when undamped);
	// UnderlayEvents the capacity-changing subset the allocator recorded.
	TraceFaults    int
	AppliedFaults  int
	UnderlayEvents int
	// Suppressed / Released / HeldAtEnd are the damper's counters (zero when
	// undamped).
	Suppressed, Released, HeldAtEnd int
	// ColdSolves counts full re-solves; under faults each effective event
	// latches the warm engine's cold fallback, so damping fewer events means
	// fewer cold solves — the bound BenchmarkFaultChurn records.
	ColdSolves         int
	WarmRefreshes      int
	NonMonotoneRefills int
	FaultResyncs       int
	Snapshots          int
	FinalActive        int
	Throughput         float64
	ReplayTime         time.Duration
}

// String renders the report for cmd/experiments output.
func (r FaultChurnReport) String() string {
	mode := "undamped"
	if r.Config.Damped {
		mode = "damped"
	}
	return fmt.Sprintf("%-8s n=%-6d sessions=%-5d peak=%-4d faults=%-4d applied=%-4d events=%-4d suppressed=%-4d cold=%-4d warm=%-4d snaps=%-4d thpt=%-12.2f replay=%v",
		mode, r.Config.Nodes, r.Sessions, r.PeakConcurrency,
		r.TraceFaults, r.AppliedFaults, r.UnderlayEvents, r.Suppressed,
		r.ColdSolves, r.WarmRefreshes, r.Snapshots, r.Throughput,
		r.ReplayTime.Round(time.Millisecond))
}

// FaultChurnRun generates a deterministic churn trace and a link flap trace
// over the same horizon, merges them by time, and replays the merged stream
// through the public Allocator: churn events join/leave sessions, fault
// events go through Allocator.Fault (optionally damped). Every SnapshotEvery
// churn events a fresh fair allocation is produced; faults in between force
// the next refresh down the cold path.
func FaultChurnRun(seed uint64, cfg FaultChurnConfig) (*FaultChurnReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// Shadow topology: bit-identical to overcast.WaxmanNetwork(nodes, 0,
	// seed), giving the fault generator edge ids and the replay the edge
	// endpoints the public Fault API speaks.
	shadow, err := topology.Waxman(topology.DefaultWaxman(cfg.Nodes), rng.New(seed))
	if err != nil {
		return nil, err
	}
	net, err := overcast.WaxmanNetwork(cfg.Nodes, 0, seed)
	if err != nil {
		return nil, err
	}
	trace, err := churn.Generate(churn.Config{
		Nodes:        cfg.Nodes,
		ArrivalRate:  cfg.ArrivalRate,
		MeanLifetime: cfg.MeanLifetime,
		Horizon:      cfg.Horizon,
		SizeMin:      cfg.SizeMin,
		SizeMax:      cfg.SizeMax,
		Demand:       cfg.Demand,
	}, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	nf := cfg.FaultEdges
	if m := shadow.Graph.NumEdges(); nf > m {
		nf = m
	}
	flapEdges := make([]graph.EdgeID, nf)
	for e := range flapEdges {
		flapEdges[e] = e
	}
	faults, err := underlay.GenerateFailures(shadow.Graph, underlay.FailureConfig{
		Edges: flapEdges, FailRate: cfg.FailRate, MeanRepair: cfg.MeanRepair, Horizon: cfg.Horizon,
	}, rng.New(seed+2))
	if err != nil {
		return nil, err
	}

	alloc, err := overcast.NewAllocator(net, overcast.AllocatorOptions{
		Mu: cfg.Mu, Epsilon: cfg.Epsilon, Routing: overcast.RoutingArbitrary,
		Workers: cfg.Workers, Shards: cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	defer alloc.Close()

	var damper *underlay.Damper
	if cfg.Damped {
		damper = underlay.NewDamper(shadow.Graph, cfg.Damping)
	}
	rep := &FaultChurnReport{
		Config:   cfg,
		Sessions: len(trace.Sessions), PeakConcurrency: trace.PeakConcurrency(),
		TraceFaults: len(faults.Events),
	}
	apply := func(ev underlay.Event) error {
		edge := shadow.Graph.Edges[ev.Edge]
		lf := overcast.LinkFault{From: edge.U, To: edge.V}
		switch ev.Kind {
		case underlay.LinkDown:
			lf.Kind = overcast.FaultLinkDown
		case underlay.LinkUp:
			lf.Kind = overcast.FaultLinkUp
		case underlay.Drift:
			lf.Kind, lf.Factor = overcast.FaultDrift, ev.Factor
		}
		rep.AppliedFaults++
		if _, err := alloc.Fault(lf); err != nil {
			return fmt.Errorf("experiments: fault churn %s edge %d: %w", ev.Kind, ev.Edge, err)
		}
		return nil
	}
	inject := func(ev underlay.Event) error {
		if damper == nil {
			return apply(ev)
		}
		for _, out := range damper.Process(ev) {
			if err := apply(out); err != nil {
				return err
			}
		}
		return nil
	}

	start := time.Now()
	ids := make(map[int]overcast.SessionID, len(trace.Sessions))
	var last *overcast.Allocation
	fi := 0
	churnSeen := 0
	for _, ev := range trace.Events {
		// Deliver every fault due before this churn event first.
		for fi < len(faults.Events) && faults.Events[fi].Time <= ev.Time {
			if err := inject(faults.Events[fi]); err != nil {
				return nil, err
			}
			fi++
		}
		spec := trace.Sessions[ev.Session]
		switch ev.Kind {
		case churn.Join:
			p, err := alloc.Join(overcast.Session{Members: spec.Members, Demand: spec.Demand})
			if err != nil {
				return nil, fmt.Errorf("experiments: fault churn join %d: %w", ev.Session, err)
			}
			ids[ev.Session] = p.Session
		case churn.Leave:
			if spec.Depart >= cfg.Horizon {
				continue
			}
			if err := alloc.Leave(ids[ev.Session]); err != nil {
				return nil, fmt.Errorf("experiments: fault churn leave %d: %w", ev.Session, err)
			}
		}
		if churnSeen++; churnSeen%cfg.SnapshotEvery == 0 && alloc.Active() > 0 {
			if last, err = alloc.Snapshot(); err != nil {
				return nil, fmt.Errorf("experiments: fault churn snapshot: %w", err)
			}
			rep.Snapshots++
		}
	}
	for ; fi < len(faults.Events); fi++ {
		if err := inject(faults.Events[fi]); err != nil {
			return nil, err
		}
	}
	if damper != nil {
		// Horizon flush: recoveries whose penalty has decayed are released;
		// links still above the reuse threshold stay administratively down.
		for _, out := range damper.Flush(cfg.Horizon) {
			if err := apply(out); err != nil {
				return nil, err
			}
		}
		rep.Suppressed, rep.Released = damper.Suppressed, damper.Released
		rep.HeldAtEnd = damper.Held()
	}
	if alloc.Active() > 0 {
		if last, err = alloc.Snapshot(); err != nil {
			return nil, err
		}
		rep.Snapshots++
	}
	rep.ReplayTime = time.Since(start)
	st := alloc.Stats()
	rep.UnderlayEvents = st.UnderlayEvents
	rep.ColdSolves, rep.WarmRefreshes = st.ColdSolves, st.WarmRefreshes
	rep.NonMonotoneRefills = st.Plane.NonMonotoneRefills
	rep.FaultResyncs = st.Shards.FaultResyncs
	rep.FinalActive = alloc.Active()
	if last != nil {
		rep.Throughput = last.OverallThroughput()
	}
	return rep, nil
}

// FaultChurnPair replays the same churn + fault traces twice — undamped, then
// through the flap damper — and returns both reports. The damped row applying
// fewer fault events (and paying fewer fault-forced cold solves) than the
// undamped row is the damping satellite's headline bound.
func FaultChurnPair(seed uint64, cfg FaultChurnConfig) (undamped, damped *FaultChurnReport, err error) {
	cfg.Damped = false
	if undamped, err = FaultChurnRun(seed, cfg); err != nil {
		return nil, nil, err
	}
	cfg.Damped = true
	if damped, err = FaultChurnRun(seed, cfg); err != nil {
		return nil, nil, err
	}
	return undamped, damped, nil
}
