// Package core implements the paper's four algorithms:
//
//   - MaxFlow (Table I): FPTAS for the overlay maximum multicommodity flow
//     problem M1 — maximize weighted aggregate session throughput.
//   - MaxConcurrentFlow (Table III): FPTAS for the overlay maximum
//     concurrent flow problem M2 — maximize the common demand-satisfaction
//     ratio (weighted max-min fairness).
//   - RandomMinCongestion (Table V): randomized rounding of a fractional
//     solution onto a bounded number of trees.
//   - OnlineMinCongestion (Table VI): online unsplittable tree construction
//     with O(log |E|) congestion competitiveness.
//
// All four share one mechanism: assign a length d_e to every physical edge,
// repeatedly query each session's minimum overlay spanning tree under d
// (overlay.TreeOracle), route along it, and multiplicatively inflate the
// lengths of the edges it used. Fixed-IP versus arbitrary routing (Sec. V)
// is purely the oracle's concern.
package core

import (
	"fmt"

	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/routing"
)

// RoutingMode selects how overlay edges map to physical routes.
type RoutingMode int

const (
	// RoutingIP uses fixed shortest-path IP routes (Sec. II).
	RoutingIP RoutingMode = iota
	// RoutingArbitrary recomputes shortest routes under the current length
	// function every oracle call (Sec. V).
	RoutingArbitrary
)

// String implements fmt.Stringer.
func (m RoutingMode) String() string {
	switch m {
	case RoutingIP:
		return "ip"
	case RoutingArbitrary:
		return "arbitrary"
	default:
		return fmt.Sprintf("RoutingMode(%d)", int(m))
	}
}

// Problem is a multicommodity overlay dissemination instance: a physical
// network plus k sessions with their tree oracles.
type Problem struct {
	G        *graph.Graph
	Sessions []*overlay.Session
	Oracles  []overlay.TreeOracle
	Mode     RoutingMode

	// MaxReceivers is |Smax|-1, the receiver count of the largest session.
	MaxReceivers int
	// U is the length (hops) of the longest unicast route any oracle can
	// use; it parametrizes the FPTAS's delta.
	U int
	// RouteWeights are the static weights the fixed IP routes were computed
	// under (nil = hop count); retained so derived problems (e.g. the MCF
	// surplus pass's residual problem) route identically.
	RouteWeights graph.Lengths
}

// NewProblem validates sessions against the graph, builds hop-count IP
// route tables restricted to session members, and instantiates one oracle
// per session in the requested mode.
func NewProblem(g *graph.Graph, sessions []*overlay.Session, mode RoutingMode) (*Problem, error) {
	return NewProblemWeighted(g, sessions, mode, nil)
}

// NewProblemWeighted is NewProblem with static per-edge routing weights for
// the fixed IP routes (e.g. BRITE propagation delays). nil weights fall back
// to hop-count routing. The weights affect only which fixed route each node
// pair uses — the solvers' length functions d_e are independent state.
func NewProblemWeighted(g *graph.Graph, sessions []*overlay.Session, mode RoutingMode, routeWeights graph.Lengths) (*Problem, error) {
	if g == nil || g.NumEdges() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if len(sessions) == 0 {
		return nil, fmt.Errorf("core: no sessions")
	}
	var members []graph.NodeID
	for i, s := range sessions {
		if s.ID != i {
			return nil, fmt.Errorf("core: session %d has ID %d; IDs must be dense and ordered", i, s.ID)
		}
		for _, m := range s.Members {
			if m < 0 || m >= g.NumNodes() {
				return nil, fmt.Errorf("core: session %d member %d outside graph", i, m)
			}
		}
		members = append(members, s.Members...)
	}
	// Fixed route tables are only needed in IP mode; the arbitrary oracle
	// recomputes routes under the solver's lengths, so building per-member
	// shortest-path trees here would be pure constructor waste.
	var rt *routing.IPRoutes
	if mode == RoutingIP {
		if routeWeights != nil {
			rt = routing.NewWeightedIPRoutes(g, members, routeWeights)
		} else {
			rt = routing.NewIPRoutes(g, members)
		}
	}

	p := &Problem{G: g, Sessions: sessions, Mode: mode, RouteWeights: routeWeights}
	for _, s := range sessions {
		var o overlay.TreeOracle
		var err error
		switch mode {
		case RoutingIP:
			o, err = overlay.NewFixedOracle(g, rt, s)
		case RoutingArbitrary:
			o, err = overlay.NewArbitraryOracle(g, s)
		default:
			err = fmt.Errorf("core: unknown routing mode %d", mode)
		}
		if err != nil {
			return nil, err
		}
		p.Oracles = append(p.Oracles, o)
		if r := s.Receivers(); r > p.MaxReceivers {
			p.MaxReceivers = r
		}
		if h := o.MaxRouteHops(); h > p.U {
			p.U = h
		}
	}
	if p.U < 1 {
		p.U = 1
	}
	return p, nil
}

// K returns the number of sessions (commodities).
func (p *Problem) K() int { return len(p.Sessions) }

// Weight returns the M1 objective weight (|S_i|-1)/(|Smax|-1) of session i.
func (p *Problem) Weight(i int) float64 {
	return float64(p.Sessions[i].Receivers()) / float64(p.MaxReceivers)
}
