package topology

import (
	"fmt"
	"math"
	"testing"

	"overcast/internal/rng"
)

func edgeList(n *Network) [][2]int {
	out := make([][2]int, 0, n.Graph.NumEdges())
	for _, e := range n.Graph.Edges {
		out = append(out, [2]int{e.U, e.V})
	}
	return out
}

func TestWaxmanGridDeterministic(t *testing.T) {
	cfg := DefaultWaxman(400)
	a, err := WaxmanGrid(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := WaxmanGrid(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := edgeList(a), edgeList(b)
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ across runs: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs across runs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c, err := WaxmanGrid(cfg, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if same := func() bool {
		ec := edgeList(c)
		if len(ec) != len(ea) {
			return false
		}
		for i := range ea {
			if ea[i] != ec[i] {
				return false
			}
		}
		return true
	}(); same {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestWaxmanGridConnectedSimple(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 50, 500} {
		cfg := DefaultWaxman(n)
		net, err := WaxmanGrid(cfg, rng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if got := net.Graph.NumNodes(); got != n {
			t.Fatalf("n=%d: %d nodes", n, got)
		}
		if !net.Graph.Connected() {
			t.Fatalf("n=%d: disconnected", n)
		}
		if n > 1 && net.Graph.NumEdges() < n-1 {
			t.Fatalf("n=%d: only %d edges", n, net.Graph.NumEdges())
		}
		for _, e := range net.Graph.Edges {
			if e.Capacity != cfg.Capacity {
				t.Fatalf("n=%d: capacity %v", n, e.Capacity)
			}
		}
	}
}

// TestWaxmanGridMatchesNaiveDistribution pins the statistical equivalence of
// the grid sampler and the naive scan: both sample stubs proportionally to
// alpha*exp(-d/(beta*L)) among non-adjacent prior nodes, so over many seeds
// the degree histogram and the edge-length profile must agree even though
// individual topologies differ for a given seed.
func TestWaxmanGridMatchesNaiveDistribution(t *testing.T) {
	for _, beta := range []float64{0.2, 0.06} {
		const n, trials = 40, 300
		cfg := DefaultWaxman(n)
		cfg.Beta = beta

		type agg struct {
			degHist   map[int]float64
			lengthSum float64
			edges     float64
		}
		collect := func(gen func(WaxmanConfig, *rng.RNG) (*Network, error), seedOff uint64) agg {
			a := agg{degHist: map[int]float64{}}
			for s := uint64(0); s < trials; s++ {
				net, err := gen(cfg, rng.New(1000+seedOff+s))
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < n; v++ {
					a.degHist[net.Graph.Degree(v)]++
				}
				for _, e := range net.Graph.Edges {
					a.lengthSum += dist(net.Pos[e.U], net.Pos[e.V])
					a.edges++
				}
			}
			return a
		}
		naive := collect(Waxman, 0)
		grid := collect(WaxmanGrid, 500000)

		if naive.edges != grid.edges {
			// Both generators add exactly min(v, M) stubs per node unless
			// every prior node is already adjacent, which cannot happen at
			// these sizes.
			t.Fatalf("beta=%v: edge totals differ: naive %v vs grid %v", beta, naive.edges, grid.edges)
		}
		// Total-variation distance between the degree histograms.
		tvd := 0.0
		total := float64(n * trials)
		for d := 0; d <= n; d++ {
			tvd += math.Abs(naive.degHist[d]-grid.degHist[d]) / total
		}
		tvd /= 2
		if tvd > 0.05 {
			t.Errorf("beta=%v: degree histogram TVD %.4f > 0.05\nnaive: %v\ngrid:  %v",
				beta, tvd, naive.degHist, grid.degHist)
		}
		meanNaive := naive.lengthSum / naive.edges
		meanGrid := grid.lengthSum / grid.edges
		if ratio := meanGrid / meanNaive; ratio < 0.95 || ratio > 1.05 {
			t.Errorf("beta=%v: mean edge length off: naive %.2f grid %.2f (ratio %.3f)",
				beta, meanNaive, meanGrid, ratio)
		}
	}
}

// The grid sampler must stay exact when the rejection path degenerates:
// coincident nodes (zero distances) and dense M relative to N.
func TestWaxmanGridDegenerate(t *testing.T) {
	cfg := DefaultWaxman(12)
	cfg.M = 20 // more stubs than prior nodes: every node pair gets wired
	net, err := WaxmanGrid(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want := 12 * 11 / 2
	if net.Graph.NumEdges() != want {
		t.Fatalf("M>N should yield the complete graph: %d edges, want %d", net.Graph.NumEdges(), want)
	}
}

func benchWaxman(b *testing.B, gen func(WaxmanConfig, *rng.RNG) (*Network, error), n int) {
	b.Helper()
	cfg := DefaultWaxman(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := gen(cfg, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if net.Graph.NumEdges() < n-1 {
			b.Fatal("too few edges")
		}
	}
}

func BenchmarkWaxmanNaive2k(b *testing.B) { benchWaxman(b, Waxman, 2000) }
func BenchmarkWaxmanGrid2k(b *testing.B)  { benchWaxman(b, WaxmanGrid, 2000) }

// The 10k pair is the acceptance benchmark for the grid sampler: WaxmanGrid
// must beat the naive generator by >=10x at this size.
func BenchmarkWaxmanNaive10k(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy topology benchmark skipped in -short mode")
	}
	benchWaxman(b, Waxman, 10000)
}

func BenchmarkWaxmanGrid10k(b *testing.B) { benchWaxman(b, WaxmanGrid, 10000) }

func BenchmarkWaxmanGrid50k(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy topology benchmark skipped in -short mode")
	}
	benchWaxman(b, WaxmanGrid, 50000)
}

func ExampleWaxmanGrid() {
	net, _ := WaxmanGrid(DefaultWaxman(1000), rng.New(7))
	fmt.Println(net.Graph.NumNodes(), net.Graph.Connected())
	// Output: 1000 true
}
