package core

import (
	"fmt"
	"testing"

	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

// An external (non-self-inflicted) shrink of the ledger invalidates the bump
// attribution; the next refresh must re-anchor cold rather than trust the
// warm state. Internal test: it reaches into the unexported ledger to
// simulate the drift.
func TestWarmExternalShrinkForcesColdResolve(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(25), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	w, err := NewWarm(g, RoutingArbitrary, nil, WarmOptions{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i, members := range [][]int{{0, 5, 9}, {2, 11, 17}, {4, 20, 23}} {
		s, err := overlay.NewSession(i, members, 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := overlay.NewArbitraryOracle(g, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Join(s, o); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if w.stats.ColdSolves != 1 {
		t.Fatalf("cold solves %d, want 1", w.stats.ColdSolves)
	}

	// Simulate external drift: shrink an edge behind the allocator's back,
	// then dirty the allocation so the next snapshot must refresh.
	w.d.Set(0, w.base[0])
	if err := w.Leave(2); err != nil {
		t.Fatal(err)
	}
	sol, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.ColdSolves != 2 || st.WarmRefreshes != 0 {
		t.Fatalf("stats %+v, want external shrink to force a cold re-anchor", st)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestWarmFaultBeforeLeaveFallsBackColdFirst pins the fallback *ordering*: an
// underlay fault (here a recovery — capacity up, length shrink) arriving
// between the anchor and the next refresh must latch the cold fallback BEFORE
// any rollback replay runs. A Leave after the fault must not touch the ledger
// at all (the recorded bump attribution refers to the old capacities), and
// the following snapshot must be bit-identical to a from-scratch cold solve
// over the surviving sessions on the faulted graph.
func TestWarmFaultBeforeLeaveFallsBackColdFirst(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(25), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	members := [][]int{{0, 5, 9}, {2, 11, 17}, {4, 20, 23}}
	newWarm := func(sets [][]int) *Warm {
		t.Helper()
		w, err := NewWarm(g, RoutingArbitrary, nil, WarmOptions{Epsilon: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range sets {
			s, err := overlay.NewSession(i, m, 1)
			if err != nil {
				t.Fatal(err)
			}
			o, err := overlay.NewArbitraryOracle(g, s)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Join(s, o); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	fingerprint := func(sol *Solution) string {
		out := ""
		for i := range sol.Sessions {
			out += fmt.Sprintf("s%d:", i)
			for _, tf := range sol.Flows[i] {
				out += fmt.Sprintf(" %x@%.17g", tf.Tree.KeyHash(), tf.Rate)
			}
			out += "\n"
		}
		return out
	}

	w := newWarm(members)
	defer w.Close()
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}

	// Underlay recovery on edge 3: capacity doubles, so the mirrored length
	// move is a shrink (factor 1/2). Warm.Fault's contract is that the caller
	// already rewrote the capacity.
	g.Edges[3].Capacity *= 2
	defer func() { g.Edges[3].Capacity /= 2 }()
	if err := w.Fault(3, 0.5); err != nil {
		t.Fatal(err)
	}
	if !w.forceCold {
		t.Fatal("fault must latch the cold fallback")
	}
	epochAfterFault := w.d.Epoch()

	// The Leave must take the cold latch branch and never replay the
	// rollback: zero ledger mutations.
	if err := w.Leave(1); err != nil {
		t.Fatal(err)
	}
	if got := w.d.Epoch(); got != epochAfterFault {
		t.Fatalf("Leave after a fault mutated the ledger (%d -> %d): rollback ran before the cold fallback", epochAfterFault, got)
	}

	sol, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.ColdSolves != 2 || st.WarmRefreshes != 0 || st.UnderlayEvents != 1 {
		t.Fatalf("stats %+v: fault must force a cold re-anchor (2 colds, 0 warm, 1 underlay event)", st)
	}

	// Bit-identity against a cold solve over the survivors on the faulted
	// graph.
	ref := newWarm([][]int{members[0], members[2]})
	defer ref.Close()
	refSol, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(sol), fingerprint(refSol); got != want {
		t.Fatalf("post-fault snapshot is not bit-identical to cold:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
