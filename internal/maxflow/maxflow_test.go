package maxflow

import (
	"math"
	"testing"
	"testing/quick"

	"overcast/internal/rng"
)

func TestSingleArc(t *testing.T) {
	f := NewNetwork(2)
	id := f.AddArc(0, 1, 7)
	if got := f.MaxFlow(0, 1); got != 7 {
		t.Fatalf("flow = %v, want 7", got)
	}
	if got := f.Flow(id, 7); got != 7 {
		t.Fatalf("arc flow = %v", got)
	}
	if f.Residual(id) != 0 {
		t.Fatal("residual should be 0")
	}
}

func TestSeriesBottleneck(t *testing.T) {
	f := NewNetwork(3)
	f.AddArc(0, 1, 10)
	f.AddArc(1, 2, 3)
	if got := f.MaxFlow(0, 2); got != 3 {
		t.Fatalf("flow = %v, want 3", got)
	}
}

func TestParallelPaths(t *testing.T) {
	f := NewNetwork(4)
	f.AddArc(0, 1, 4)
	f.AddArc(1, 3, 4)
	f.AddArc(0, 2, 5)
	f.AddArc(2, 3, 2)
	if got := f.MaxFlow(0, 3); got != 6 {
		t.Fatalf("flow = %v, want 6", got)
	}
}

func TestClassicCLRSNetwork(t *testing.T) {
	// The CLRS Figure 26.1 network with max flow 23.
	f := NewNetwork(6)
	f.AddArc(0, 1, 16)
	f.AddArc(0, 2, 13)
	f.AddArc(1, 2, 10)
	f.AddArc(2, 1, 4)
	f.AddArc(1, 3, 12)
	f.AddArc(3, 2, 9)
	f.AddArc(2, 4, 14)
	f.AddArc(4, 3, 7)
	f.AddArc(3, 5, 20)
	f.AddArc(4, 5, 4)
	if got := f.MaxFlow(0, 5); got != 23 {
		t.Fatalf("flow = %v, want 23", got)
	}
}

func TestUndirectedEdgeBothDirections(t *testing.T) {
	f := NewNetwork(3)
	f.AddEdge(0, 1, 5)
	f.AddEdge(1, 2, 5)
	if got := f.MaxFlow(0, 2); got != 5 {
		t.Fatalf("forward flow = %v, want 5", got)
	}
	f2 := NewNetwork(3)
	f2.AddEdge(0, 1, 5)
	f2.AddEdge(1, 2, 5)
	if got := f2.MaxFlow(2, 0); got != 5 {
		t.Fatalf("reverse flow = %v, want 5", got)
	}
}

func TestDisconnected(t *testing.T) {
	f := NewNetwork(3)
	f.AddArc(0, 1, 5)
	if got := f.MaxFlow(0, 2); got != 0 {
		t.Fatalf("flow across components = %v", got)
	}
}

func TestMinCutSide(t *testing.T) {
	f := NewNetwork(4)
	f.AddArc(0, 1, 10)
	f.AddArc(1, 2, 1) // the cut
	f.AddArc(2, 3, 10)
	if got := f.MaxFlow(0, 3); got != 1 {
		t.Fatalf("flow = %v", got)
	}
	side := f.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Fatalf("cut side wrong: %v", side)
	}
}

func TestPanics(t *testing.T) {
	f := NewNetwork(2)
	func() {
		defer func() { _ = recover() }()
		f.AddArc(0, 5, 1)
		t.Error("out-of-range arc did not panic")
	}()
	func() {
		defer func() { _ = recover() }()
		f.AddArc(0, 1, -1)
		t.Error("negative capacity did not panic")
	}()
	func() {
		defer func() { _ = recover() }()
		f.MaxFlow(1, 1)
		t.Error("s==t did not panic")
	}()
	func() {
		defer func() { _ = recover() }()
		NewNetwork(0)
		t.Error("empty network did not panic")
	}()
}

// TestFlowEqualsMinCutRandom property-tests weak duality on random graphs:
// the computed flow must equal the capacity of the min cut found.
func TestFlowEqualsMinCutRandom(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(8)
		f := NewNetwork(n)
		type arcRec struct {
			u, v int
			c    float64
		}
		var recs []arcRec
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			c := 1 + float64(r.Intn(10))
			f.AddArc(u, v, c)
			recs = append(recs, arcRec{u, v, c})
		}
		flow := f.MaxFlow(0, n-1)
		side := f.MinCutSide(0)
		if side[n-1] {
			// Sink reachable => flow must have been unbounded? impossible
			// with finite capacities; means flow is 0-improvable, error.
			return false
		}
		cut := 0.0
		for _, a := range recs {
			if side[a.u] && !side[a.v] {
				cut += a.c
			}
		}
		return math.Abs(flow-cut) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFlowConservationRandom checks Kirchhoff conservation at every interior
// node of a random network.
func TestFlowConservationRandom(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(6)
		f := NewNetwork(n)
		type rec struct {
			id   int
			u, v int
			c    float64
		}
		var recs []rec
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			c := float64(1 + r.Intn(9))
			id := f.AddArc(u, v, c)
			recs = append(recs, rec{id, u, v, c})
		}
		total := f.MaxFlow(0, n-1)
		net := make([]float64, n)
		for _, a := range recs {
			fl := f.Flow(a.id, a.c)
			if fl < -1e-9 || fl > a.c+1e-9 {
				return false
			}
			net[a.u] -= fl
			net[a.v] += fl
		}
		if math.Abs(net[0]+total) > 1e-6 || math.Abs(net[n-1]-total) > 1e-6 {
			return false
		}
		for v := 1; v < n-1; v++ {
			if math.Abs(net[v]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDinicGrid(b *testing.B) {
	// 20x20 grid, flow corner to corner.
	const side = 20
	id := func(r, c int) int { return r*side + c }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewNetwork(side * side)
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				if c+1 < side {
					f.AddEdge(id(r, c), id(r, c+1), 1)
				}
				if r+1 < side {
					f.AddEdge(id(r, c), id(r+1, c), 1)
				}
			}
		}
		f.MaxFlow(0, side*side-1)
	}
}
