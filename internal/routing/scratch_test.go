package routing

import (
	"testing"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

// TestDijkstraScratchMatchesShortestPaths checks that the scratch-based
// Dijkstra produces identical distances and parent edges to the allocating
// entry point on random topologies, across repeated reuse of one scratch.
func TestDijkstraScratchMatchesShortestPaths(t *testing.T) {
	r := rng.New(11)
	net, err := topology.Waxman(topology.DefaultWaxman(120), r)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	d := net.LinkDelays()
	sc := NewDijkstraScratch(g)
	for src := 0; src < 20; src++ {
		wantDist, wantParent := ShortestPaths(g, src, d)
		gotDist, gotParent := sc.ShortestPaths(g, src, d)
		for v := 0; v < g.NumNodes(); v++ {
			if gotDist[v] != wantDist[v] {
				t.Fatalf("src %d: dist[%d] = %v, want %v", src, v, gotDist[v], wantDist[v])
			}
			if gotParent[v] != wantParent[v] {
				t.Fatalf("src %d: parent[%d] = %v, want %v", src, v, gotParent[v], wantParent[v])
			}
		}
	}
}

// TestShortestPathsIntoAllocs is the allocation regression test for the
// Dijkstra hot path: with pooled scratch state, a shortest-path computation
// must not allocate at all.
func TestShortestPathsIntoAllocs(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(300), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	d := net.LinkDelays()
	sc := NewDijkstraScratch(g)
	dist := make([]float64, g.NumNodes())
	parent := make([]graph.EdgeID, g.NumNodes())
	allocs := testing.AllocsPerRun(20, func() {
		sc.ShortestPathsInto(g, 0, d, dist, parent)
	})
	if allocs != 0 {
		t.Fatalf("ShortestPathsInto allocates %v per run, want 0", allocs)
	}
}
