// IP routing impact: the paper's Sec. V question — how much does the fixed
// IP route between overlay nodes constrain the achievable throughput,
// compared to letting the overlay re-route every pair dynamically?
//
// This example runs MaxFlow under both routing models on the same network
// and sessions and reports the gap. (On our BRITE-style instances the gap
// is substantial, unlike the <1% the paper reports — see EXPERIMENTS.md for
// the full analysis.)
//
// Run with: go run ./examples/iprouting
package main

import (
	"fmt"
	"log"

	"overcast"
)

func main() {
	net, err := overcast.WaxmanNetwork(80, 100, 7)
	if err != nil {
		log.Fatal(err)
	}
	sessions := []overcast.Session{
		{Members: []int{2, 18, 33, 47, 61, 79}, Demand: 100},
		{Members: []int{9, 26, 54, 70}, Demand: 100},
	}

	type result struct {
		name  string
		alloc *overcast.Allocation
	}
	var results []result
	for _, mode := range []struct {
		name    string
		routing overcast.Routing
	}{
		{"fixed IP routing", overcast.RoutingIP},
		{"arbitrary routing", overcast.RoutingArbitrary},
	} {
		sys, err := overcast.NewSystem(net, sessions, mode.routing)
		if err != nil {
			log.Fatal(err)
		}
		alloc, err := sys.MaxFlow(0.93)
		if err != nil {
			log.Fatal(err)
		}
		if err := alloc.Verify(); err != nil {
			log.Fatal(err)
		}
		results = append(results, result{mode.name, alloc})
	}

	fmt.Println("routing model        session1    session2   throughput   trees(s1)  trees(s2)")
	for _, r := range results {
		fmt.Printf("%-20s%9.2f  %10.2f  %11.2f  %9d  %9d\n",
			r.name, r.alloc.SessionRate(0), r.alloc.SessionRate(1),
			r.alloc.OverallThroughput(), r.alloc.TreeCount(0), r.alloc.TreeCount(1))
	}
	gain := results[1].alloc.OverallThroughput() / results[0].alloc.OverallThroughput()
	fmt.Printf("\ndynamic routing gain over fixed IP routes: %.2fx\n", gain)
	fmt.Println("(the paper reports <1% on its instance; our measured gap is the")
	fmt.Println(" honest result on reproducible BRITE-style topologies — see EXPERIMENTS.md)")
}
