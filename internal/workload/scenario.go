package workload

import (
	"fmt"
	"sort"

	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
)

// SizeSampler draws session sizes (member counts, source included). maxNodes
// is the topology size; implementations clamp to [2, maxNodes].
type SizeSampler interface {
	SampleSize(r *rng.RNG, maxNodes int) int
	String() string
}

func clampSize(v, maxNodes int) int {
	if v < 2 {
		v = 2
	}
	if v > maxNodes {
		v = maxNodes
	}
	return v
}

// FixedSize always returns its value (clamped to the topology).
type FixedSize int

// SampleSize implements SizeSampler.
func (f FixedSize) SampleSize(_ *rng.RNG, maxNodes int) int {
	return clampSize(int(f), maxNodes)
}

func (f FixedSize) String() string { return fmt.Sprintf("size=%d", int(f)) }

// UniformSize draws uniformly from {Lo..Hi}.
type UniformSize struct{ Lo, Hi int }

// SampleSize implements SizeSampler.
func (u UniformSize) SampleSize(r *rng.RNG, maxNodes int) int {
	return clampSize(u.Lo+r.Intn(u.Hi-u.Lo+1), maxNodes)
}

func (u UniformSize) String() string { return fmt.Sprintf("size=%d..%d", u.Lo, u.Hi) }

// ParetoSize draws Base + Pareto(Shape, Scale) rounded down, capped at
// maxNodes/Div (Div >= 1; 0 means no divisor cap) — "few huge groups" mixes.
type ParetoSize struct {
	Base  int
	Shape float64
	Scale float64
	Div   int
}

// SampleSize implements SizeSampler.
func (p ParetoSize) SampleSize(r *rng.RNG, maxNodes int) int {
	v := p.Base + int(Pareto{Shape: p.Shape, Scale: p.Scale}.Sample(r))
	limit := maxNodes
	if p.Div > 1 {
		if limit = maxNodes / p.Div; limit < 2 {
			limit = 2
		}
	}
	return clampSize(v, limit)
}

func (p ParetoSize) String() string {
	return fmt.Sprintf("size=%d+pareto(a=%g,xm=%g)", p.Base, p.Shape, p.Scale)
}

// MixSize draws from A with probability PA, else from B — bimodal session
// mixes such as a CDN carrying a few livestreams next to many small fan-outs.
type MixSize struct {
	PA   float64
	A, B SizeSampler
}

// SampleSize implements SizeSampler.
func (m MixSize) SampleSize(r *rng.RNG, maxNodes int) int {
	if r.Float64() < m.PA {
		return m.A.SampleSize(r, maxNodes)
	}
	return m.B.SampleSize(r, maxNodes)
}

func (m MixSize) String() string { return fmt.Sprintf("mix(%.0f%% %v, %v)", m.PA*100, m.A, m.B) }

// Scenario names one complete workload regime: how link capacities, session
// demands, session sizes, and member popularity are distributed.
type Scenario struct {
	Name        string
	Description string
	// Regime notes the deployment pattern the scenario imitates, for docs
	// and report headers.
	Regime   string
	Capacity Sampler
	Demand   Sampler
	Size     SizeSampler
	// PopularityExp skews member choice: 0 samples members uniformly; s > 0
	// samples them from a Zipf(s) distribution over node ids, so a few hot
	// nodes join many sessions (flash-crowd receivers, popular sources).
	PopularityExp float64
}

// Capacities overwrites g's edge capacities with draws from the scenario's
// capacity distribution, in EdgeID order (deterministic: EdgeIDs are a
// sorted function of the edge set).
func (sc *Scenario) Capacities(g *graph.Graph, r *rng.RNG) {
	for e := range g.Edges {
		g.Edges[e].Capacity = sc.Capacity.Sample(r)
	}
}

// MemberSampler draws distinct member sets over n nodes with a scenario's
// node-popularity skew. Zipf ranks are mapped onto node ids through a seeded
// random permutation shared by the whole instance: in the incremental
// Waxman models, low node ids are the earliest-inserted, best-connected
// nodes, so an identity mapping would systematically place every hot member
// in the topology core. Member sampling falls back to uniform for sessions
// spanning more than an eighth of the topology, where Zipf rejection would
// stall on the tail.
type MemberSampler struct {
	n          int
	zipf       *Zipf
	rankToNode []int
}

// NewMemberSampler builds the scenario's member sampler for an n-node
// topology. r seeds the shared rank permutation (consumed only for scenarios
// with popularity skew, via r.Split(1<<32), so existing fixed-seed streams
// are unchanged).
func (sc *Scenario) NewMemberSampler(n int, r *rng.RNG) *MemberSampler {
	ms := &MemberSampler{n: n}
	if sc.PopularityExp > 0 {
		ms.zipf = NewZipf(n, sc.PopularityExp)
		ms.rankToNode = r.Split(1 << 32).Perm(n)
	}
	return ms
}

// Sample draws size distinct node ids from r.
func (ms *MemberSampler) Sample(r *rng.RNG, size int) []graph.NodeID {
	return sampleMembers(r, ms.zipf, ms.rankToNode, ms.n, size)
}

// Sessions draws count sessions over a topology of n nodes: a size, a
// demand, and a distinct member set each, with members Zipf-skewed when the
// scenario says so (see MemberSampler).
func (sc *Scenario) Sessions(n, count int, r *rng.RNG) ([]*overlay.Session, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: %d nodes cannot host sessions", n)
	}
	ms := sc.NewMemberSampler(n, r)
	sessions := make([]*overlay.Session, count)
	for i := 0; i < count; i++ {
		sr := r.Split(uint64(i))
		size := sc.Size.SampleSize(sr, n)
		demand := sc.Demand.Sample(sr)
		members := ms.Sample(sr, size)
		s, err := overlay.NewSession(i, members, demand)
		if err != nil {
			return nil, fmt.Errorf("workload: scenario %s session %d: %w", sc.Name, i, err)
		}
		sessions[i] = s
	}
	return sessions, nil
}

// sampleMembers draws size distinct node ids, Zipf-weighted over the rank
// permutation when zipf is non-nil and the set is small enough for
// rejection to stay cheap.
func sampleMembers(r *rng.RNG, zipf *Zipf, rankToNode []int, n, size int) []graph.NodeID {
	if zipf == nil || size > n/8 {
		return r.Sample(n, size)
	}
	seen := make(map[int]struct{}, size)
	out := make([]graph.NodeID, 0, size)
	for len(out) < size {
		rank := zipf.Sample(r)
		if _, dup := seen[rank]; dup {
			continue
		}
		seen[rank] = struct{}{}
		out = append(out, rankToNode[rank])
	}
	return out
}

// registry holds the named scenarios. Capacity and demand scales stay
// comparable to the paper's uniform-100 setting so cross-scenario throughput
// numbers remain meaningful.
var registry = map[string]*Scenario{
	"uniform": {
		Name:        "uniform",
		Description: "paper baseline: uniform capacity 100, demand 100, fixed-size sessions",
		Regime:      "the paper's BRITE setting, scaled up",
		Capacity:    Constant(100),
		Demand:      Constant(100),
		Size:        FixedSize(6),
	},
	"heavytail": {
		Name:        "heavytail",
		Description: "Pareto(1.5) link capacities and lognormal demands, fixed-size sessions",
		Regime:      "measured access-capacity distributions (MON, P2P traces)",
		Capacity:    Clamp{S: Pareto{Shape: 1.5, Scale: 40}, Lo: 40, Hi: 4000},
		Demand:      Clamp{S: LognormalMedian(80, 0.7), Lo: 5, Hi: 2000},
		Size:        FixedSize(6),
	},
	"livestream": {
		Name:        "livestream",
		Description: "few huge multicast groups with high demand, hot Zipf receivers",
		Regime:      "live event streaming: one-to-many at large fan-out",
		Capacity:    Clamp{S: Pareto{Shape: 1.5, Scale: 40}, Lo: 40, Hi: 4000},
		Demand:      Clamp{S: LognormalMedian(300, 0.5), Lo: 50, Hi: 3000},
		Size:        ParetoSize{Base: 24, Shape: 1.1, Scale: 8, Div: 8},
		// Hot receivers: the same popular nodes tune into many streams.
		PopularityExp: 0.9,
	},
	"conferencing": {
		Name:          "conferencing",
		Description:   "many small sessions (3-8 members) with modest lognormal demands",
		Regime:        "video conferencing: dense all-to-all in small rooms",
		Capacity:      Clamp{S: LognormalMedian(100, 0.5), Lo: 20, Hi: 1000},
		Demand:        Clamp{S: LognormalMedian(30, 0.6), Lo: 5, Hi: 300},
		Size:          UniformSize{Lo: 3, Hi: 8},
		PopularityExp: 0.6,
	},
	"cdn": {
		Name:        "cdn",
		Description: "bimodal mix: 80% small fan-outs, 20% large groups; very heavy capacity tail",
		Regime:      "CDN edge delivery: mixed content, skewed node popularity",
		Capacity:    Clamp{S: Pareto{Shape: 1.2, Scale: 30}, Lo: 30, Hi: 6000},
		Demand:      Clamp{S: Pareto{Shape: 1.5, Scale: 20}, Lo: 20, Hi: 1000},
		Size: MixSize{PA: 0.8,
			A: UniformSize{Lo: 3, Hi: 6},
			B: ParetoSize{Base: 16, Shape: 1.3, Scale: 6, Div: 10}},
		PopularityExp: 1.0,
	},
}

// Get returns the named scenario, or an error listing the valid names.
func Get(name string) (*Scenario, error) {
	sc, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Names())
	}
	return sc, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
