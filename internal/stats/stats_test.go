package stats

import (
	"math"
	"testing"
	"testing/quick"

	"overcast/internal/rng"
)

func TestAccumulativeRateCDF(t *testing.T) {
	curve := AccumulativeRateCDF([]float64{1, 3, 6})
	if len(curve) != 3 {
		t.Fatalf("curve length %d", len(curve))
	}
	// Sorted descending: 6,3,1 of total 10.
	want := []Point{{1.0 / 3, 0.6}, {2.0 / 3, 0.9}, {1, 1}}
	for i, p := range curve {
		if math.Abs(p.X-want[i].X) > 1e-12 || math.Abs(p.Y-want[i].Y) > 1e-12 {
			t.Fatalf("point %d = %v, want %v", i, p, want[i])
		}
	}
	if AccumulativeRateCDF(nil) != nil {
		t.Fatal("empty input should give nil")
	}
	if AccumulativeRateCDF([]float64{0, 0}) != nil {
		t.Fatal("zero-total input should give nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(30)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = r.Float64() * 10
		}
		curve := AccumulativeRateCDF(rates)
		prevX, prevY := 0.0, 0.0
		for _, p := range curve {
			if p.X < prevX || p.Y < prevY-1e-12 {
				return false
			}
			prevX, prevY = p.X, p.Y
		}
		return len(curve) == 0 || math.Abs(curve[len(curve)-1].Y-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopShareFraction(t *testing.T) {
	// One dominant tree: 90 of 100 in the first of 10 trees.
	rates := []float64{90, 2, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := TopShareFraction(rates, 0.9); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("TopShareFraction = %v, want 0.1", got)
	}
	// Uniform rates: need 90% of trees for 90% of rate.
	uniform := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := TopShareFraction(uniform, 0.9); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("uniform TopShareFraction = %v, want 0.9", got)
	}
	if got := TopShareFraction(nil, 0.5); got != 1 {
		t.Fatalf("empty TopShareFraction = %v", got)
	}
}

func TestUtilizationCDF(t *testing.T) {
	curve := UtilizationCDF([]float64{0.2, 1.0, 0.5})
	if len(curve) != 3 || curve[0].Y != 1.0 || curve[2].Y != 0.2 {
		t.Fatalf("curve wrong: %v", curve)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Y > curve[i-1].Y {
			t.Fatal("utilization CDF not descending")
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean wrong")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal Jain = %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("concentrated Jain = %v", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0}) != 0 {
		t.Fatal("degenerate Jain")
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{1, 1, 1}); math.Abs(got) > 1e-12 {
		t.Fatalf("equal Gini = %v", got)
	}
	asym := Gini([]float64{0, 0, 0, 10})
	if asym < 0.7 {
		t.Fatalf("asymmetric Gini = %v, want high", asym)
	}
	if Gini(nil) != 0 {
		t.Fatal("empty Gini")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median %v", got)
	}
	if got := Quantile(xs, 0.25); math.Abs(got-2) > 1e-12 {
		t.Fatalf("q25 %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Fatal("clamping wrong")
	}
}

func TestSurface(t *testing.T) {
	s := NewSurface("sessions", []int{1, 2}, "size", []int{10, 20, 30})
	s.Set(2, 20, 7.5)
	if got := s.At(2, 20); got != 7.5 {
		t.Fatalf("At = %v", got)
	}
	if got := s.At(1, 10); got != 0 {
		t.Fatalf("zero cell = %v", got)
	}
	out := s.Render()
	if out == "" || len(out) < 10 {
		t.Fatal("render empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown axis value did not panic")
		}
	}()
	s.Set(9, 10, 1)
}

func TestRenderCurve(t *testing.T) {
	curve := AccumulativeRateCDF([]float64{5, 3, 2, 1, 1})
	full := RenderCurve(curve, 0)
	if full == "" {
		t.Fatal("empty render")
	}
	sampled := RenderCurve(curve, 2)
	if len(sampled) >= len(full) {
		t.Fatal("sampling did not shrink output")
	}
	if RenderCurve(nil, 5) != "(empty)\n" {
		t.Fatal("empty curve render wrong")
	}
}
