package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seenNonZero := false
	for i := 0; i < 100; i++ {
		if r.Uint64() != 0 {
			seenNonZero = true
		}
	}
	if !seenNonZero {
		t.Fatal("zero seed produced a stuck all-zero stream")
	}
}

func TestSplitOrderIndependence(t *testing.T) {
	parent := New(7)
	c3first := parent.Split(3).Uint64()
	c1first := parent.Split(1).Uint64()
	// Splitting in the opposite order must give the same children because
	// Split does not mutate the parent.
	c1second := parent.Split(1).Uint64()
	c3second := parent.Split(3).Uint64()
	if c1first != c1second || c3first != c3second {
		t.Fatal("Split is order dependent")
	}
	if c1first == c3first {
		t.Fatal("distinct split indices produced identical streams")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for n := 1; n < 50; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f far from 0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %f far from 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const trials = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %f far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for n := 0; n < 40; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(29)
	quickCheck := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(quickCheck, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(31)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.25 {
		t.Fatalf("weight ratio %f far from 3", ratio)
	}
}

func TestWeightedChoiceAllZeroFallsBackToUniform(t *testing.T) {
	r := New(37)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedChoice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Fatalf("uniform fallback bucket %d count %d too low", i, c)
		}
	}
}

func TestWeightedChoiceNegativeWeightsIgnored(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		if got := r.WeightedChoice([]float64{-5, 2, -1}); got != 1 {
			t.Fatalf("negative weights not ignored, picked %d", got)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
