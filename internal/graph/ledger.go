package graph

// This file implements the versioned length ledger. The Garg–Könemann loops
// mutate edge lengths multiplicatively on *only the routed trees' edges* each
// iteration, but a bare Lengths slice cannot report what changed, so every
// consumer that caches work keyed on the length function (the shared SSSP
// plane above all) had to rebuild from scratch after every update. A
// LengthStore wraps the flat slice with an epoch counter, a per-edge
// last-touched stamp, and a bounded touched-edge journal, so those consumers
// can ask "what moved since I last looked?" and repair instead of rebuild.

// Epoch is a point in a LengthStore's mutation history. Epoch 0 is the
// store's initial contents; every mutation (Bump or Set) advances the epoch
// by exactly one, so epochs double as a mutation count.
type Epoch = int64

// JournalWindow bounds the touched-edge journal. When the journal outgrows
// the bound its oldest half is discarded (see Touched's ok return); the
// per-edge LastTouched stamps are complete history and are never trimmed, so
// repair consumers falling off the window only lose the journal-replay fast
// path, never correctness (they fall back to LastTouched walks). Exported so
// fault harnesses can size event bursts that deliberately overflow the window
// (forcing the sharded solver's full-snapshot resync path).
const JournalWindow = 1 << 16

const maxJournal = JournalWindow

// LengthStore is a versioned per-edge length assignment d_e — the mutable
// dual variable of the Garg–Könemann framework — that journals its own
// mutations. All reads go through Values/At; all writes go through Bump/Set,
// which advance the epoch and stamp the touched edge. The store additionally
// tracks monotonicity: MonotoneSince reports whether every mutation in an
// epoch range could only have *increased* lengths, the precondition under
// which a cached shortest-path tree that avoids every touched edge is
// provably still exact (see overlay.Plane).
//
// A LengthStore is single-writer: mutations must come from one goroutine,
// with the usual happens-before edges before concurrent readers (the batch
// runner's worker handoff provides them).
type LengthStore struct {
	vals  Lengths
	epoch Epoch
	// lastTouch[e] is the epoch of e's most recent mutation (0 = never
	// touched since construction).
	lastTouch []Epoch
	// lastShrink is the epoch of the most recent mutation that was not a
	// pure growth (a Set, or a Bump with factor < 1). 0 = none.
	lastShrink Epoch
	// journal[i] is the edge mutated at epoch firstEpoch+1+i; the journal is
	// a sliding window over the most recent mutations.
	journal    []EdgeID
	firstEpoch Epoch // epoch represented by the state *before* journal[0]
	// nonPos counts edges whose current length is not strictly positive
	// (zero, negative, or NaN), maintained incrementally so AllPositive is
	// O(1). Strict positivity is the certificate the subtree-repair path
	// needs for pop-order bit-identity (see overlay.BatchRunner).
	nonPos int
	// minLB is a conservative lower bound on every length the ledger has
	// ever held: the running minimum over the initial values and every
	// written value. The true current minimum can be larger (values mostly
	// grow), never smaller. Feeds MinLengthLB, the scale-separation half of
	// the subtree-repair certificate.
	minLB float64
}

// NewLengthStore returns a ledger over g with every edge length init, at
// epoch 0.
func NewLengthStore(g *Graph, init float64) *LengthStore {
	return NewLengthStoreFrom(NewLengths(g, init))
}

// NewLengthStoreFrom wraps vals (taking ownership) as the ledger's epoch-0
// contents.
func NewLengthStoreFrom(vals Lengths) *LengthStore {
	s := &LengthStore{vals: vals, lastTouch: make([]Epoch, len(vals)), minLB: infLen}
	for _, v := range vals {
		if !(v > 0) {
			s.nonPos++
		}
		if v < s.minLB {
			s.minLB = v
		}
	}
	return s
}

// Values returns the live length slice for read-only use (oracle calls, path
// length sums). Mutating it directly bypasses the ledger and breaks every
// consumer keyed on epochs — always write through Bump/Set.
func (s *LengthStore) Values() Lengths { return s.vals }

// At returns d_e.
func (s *LengthStore) At(e EdgeID) float64 { return s.vals[e] }

// Len returns the number of edges.
func (s *LengthStore) Len() int { return len(s.vals) }

// Epoch returns the current epoch (the number of mutations so far).
func (s *LengthStore) Epoch() Epoch { return s.epoch }

// LastTouched returns the epoch of e's most recent mutation (0 = never).
func (s *LengthStore) LastTouched(e EdgeID) Epoch { return s.lastTouch[e] }

// Bump multiplies d_e by factor and journals the touch. The Garg–Könemann
// updates always have factor >= 1; a factor below 1 is legal but marks the
// epoch as non-monotone, which forces full refills on repair-capable
// consumers (shrinking an untouched-tree edge can re-route shortest paths).
func (s *LengthStore) Bump(e EdgeID, factor float64) {
	old := s.vals[e]
	s.vals[e] = old * factor
	s.repos(old, s.vals[e])
	s.touch(e, factor < 1)
}

// Set assigns d_e = v and journals the touch as non-monotone (a wholesale
// assignment can shrink).
func (s *LengthStore) Set(e EdgeID, v float64) {
	s.repos(s.vals[e], v)
	s.vals[e] = v
	s.touch(e, true)
}

// Raise assigns d_e = v and journals the touch as monotone when v does not
// shrink the current value. This is the replica-synchronization primitive of
// the sharded solver (internal/shard): a growth observed on the authoritative
// ledger replays as a growth on a replica, preserving the replica's
// monotonicity window so repair-capable consumers (the per-shard SSSP plane)
// keep their skip/repair fast paths — a plain Set would pessimistically mark
// every sync epoch a shrink.
func (s *LengthStore) Raise(e EdgeID, v float64) {
	shrink := v < s.vals[e]
	s.repos(s.vals[e], v)
	s.vals[e] = v
	s.touch(e, shrink)
}

// infLen is the sentinel minLB starts from (no length seen yet); it matches
// the routing package's unreachable-distance sentinel.
const infLen = 1e308

// repos maintains the nonPos tally and the minLB running minimum across an
// old -> new value transition. NaN compares false to everything, so it lands
// on the non-positive side of both tests — the conservative direction — and
// never lowers minLB (a NaN length already fails AllPositive, the gate that
// matters).
func (s *LengthStore) repos(old, new float64) {
	op, np := old > 0, new > 0
	if op && !np {
		s.nonPos++
	} else if !op && np {
		s.nonPos--
	}
	if new < s.minLB {
		s.minLB = new
	}
}

// AllPositive reports whether every edge length is currently strictly
// positive (> 0; NaN counts as not positive). O(1): the tally is maintained
// by every mutation. It is the extra certificate subtree repair needs beyond
// MonotoneSince: with strictly positive lengths every settled node's winning
// parent pops at a strictly smaller key, so a resumed Dijkstra whose heap is
// seeded with the whole intact frontier reproduces the full run's (key, id)
// pop order — and therefore its tie-broken parent choices — exactly. Zero-
// length edges would let a late-discovered equal-key node pop in a different
// relative position and flip a tie.
func (s *LengthStore) AllPositive() bool { return s.nonPos == 0 }

// MinLengthLB returns a conservative lower bound on the current minimum edge
// length: the running minimum over every value the ledger has ever held. It
// is the scale-separation half of the subtree-repair certificate: strict
// positivity alone does not make float keys strictly increase — an edge whose
// length is below half an ulp of an accumulated distance rounds away
// (dist + len == dist bitwise) and behaves exactly like a zero-length edge,
// so equal-key pops can interleave differently between a resumed and a fresh
// Dijkstra. Repair-capable consumers therefore also require
// MinLengthLB() > maxRowDist * 2^-50, which guarantees every relaxation
// strictly grows its key (see overlay.Plane). The bound is conservative:
// values mostly grow, so the true minimum may be larger and the consumer
// falls back to a full refill more often than strictly necessary — never
// less.
func (s *LengthStore) MinLengthLB() float64 { return s.minLB }

func (s *LengthStore) touch(e EdgeID, shrink bool) {
	s.epoch++
	s.lastTouch[e] = s.epoch
	if shrink {
		s.lastShrink = s.epoch
	}
	if len(s.journal) >= maxJournal {
		half := len(s.journal) / 2
		s.firstEpoch += Epoch(half)
		s.journal = s.journal[:copy(s.journal, s.journal[half:])]
	}
	s.journal = append(s.journal, e)
}

// MonotoneSince reports whether every mutation after epoch `since` was a
// pure growth (Bump with factor >= 1). It needs no journal history, so it is
// exact for any since.
func (s *LengthStore) MonotoneSince(since Epoch) bool { return s.lastShrink <= since }

// TouchedCount returns the number of mutations after epoch `since` (counting
// repeat touches of one edge individually).
func (s *LengthStore) TouchedCount(since Epoch) Epoch { return s.epoch - since }

// ForEachTouched calls fn for every journal entry after epoch `since`, in
// mutation order (an edge mutated twice appears twice), stopping early when
// fn returns true. It reports whether the journal still covers that range;
// ok=false means the range is unanswerable — history older than the journal
// window, or a `since` from the future (e.g. an epoch taken from a different
// ledger) — and the caller must assume everything moved. This is the repair hot path: the
// plane's dirty-source check replays the window against a row's stored
// parent tree (stopping at the first tree hit) before falling back to
// per-path LastTouched walks.
func (s *LengthStore) ForEachTouched(since Epoch, fn func(EdgeID) (stop bool)) (ok bool) {
	if since < s.firstEpoch || since > s.epoch {
		return false
	}
	for _, e := range s.journal[since-s.firstEpoch:] {
		if fn(e) {
			break
		}
	}
	return true
}

// Touched returns the distinct edges mutated after epoch `since`, in
// first-touch order. ok=false means the journal window no longer covers
// `since` (see ForEachTouched). It allocates; it is a diagnostic/test API,
// not the hot path (hot consumers use LastTouched stamps or ForEachTouched).
func (s *LengthStore) Touched(since Epoch) (edges []EdgeID, ok bool) {
	if since < s.firstEpoch || since > s.epoch {
		return nil, false
	}
	seen := make(map[EdgeID]bool)
	for _, e := range s.journal[since-s.firstEpoch:] {
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	return edges, true
}
