package exact

import (
	"math"
	"testing"

	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

func treeOracles(t testing.TB, g *graph.Graph, sessions []*overlay.Session) []overlay.TreeOracle {
	t.Helper()
	var members []graph.NodeID
	for _, s := range sessions {
		members = append(members, s.Members...)
	}
	rt := routing.NewIPRoutes(g, members)
	var oracles []overlay.TreeOracle
	for _, s := range sessions {
		o, err := overlay.NewFixedOracle(g, rt, s)
		if err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, o)
	}
	return oracles
}

func TestCGMatchesEnumerationM1(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		r := rng.New(uint64(500 + trial))
		net, err := topology.Waxman(topology.DefaultWaxman(25), r)
		if err != nil {
			t.Fatal(err)
		}
		g := net.Graph
		perm := r.Perm(25)
		s1, _ := overlay.NewSession(0, perm[0:4], 1)
		s2, _ := overlay.NewSession(1, perm[4:7], 1)
		sessions := []*overlay.Session{s1, s2}
		enum, err := MaxMulticommodityFlow(g, fixedOracles(t, g, sessions), 6)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := MaxMulticommodityFlowCG(g, treeOracles(t, g, sessions), CGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !cg.Optimal {
			t.Fatalf("trial %d: CG did not converge", trial)
		}
		if math.Abs(cg.Value-enum.Value) > 1e-6 {
			t.Fatalf("trial %d: CG %v != enumeration %v", trial, cg.Value, enum.Value)
		}
		if cg.Columns >= 16+3 {
			// Column generation must beat full enumeration (16+3 trees).
			t.Logf("trial %d: CG used %d columns (enumeration: 19)", trial, cg.Columns)
		}
	}
}

func TestCGMatchesEnumerationM2(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		r := rng.New(uint64(600 + trial))
		net, err := topology.Waxman(topology.DefaultWaxman(25), r)
		if err != nil {
			t.Fatal(err)
		}
		g := net.Graph
		perm := r.Perm(25)
		s1, _ := overlay.NewSession(0, perm[0:4], 1+float64(r.Intn(3)))
		s2, _ := overlay.NewSession(1, perm[4:7], 1+float64(r.Intn(3)))
		sessions := []*overlay.Session{s1, s2}
		enum, err := MaxConcurrentFlow(g, fixedOracles(t, g, sessions), 6)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := MaxConcurrentFlowCG(g, treeOracles(t, g, sessions), CGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !cg.Optimal {
			t.Fatalf("trial %d: CG did not converge", trial)
		}
		if math.Abs(cg.Value-enum.Value) > 1e-6 {
			t.Fatalf("trial %d: CG lambda %v != enumeration %v", trial, cg.Value, enum.Value)
		}
	}
}

func TestCGSolutionIsFeasible(t *testing.T) {
	r := rng.New(77)
	net, err := topology.Waxman(topology.DefaultWaxman(30), r)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	perm := r.Perm(30)
	s1, _ := overlay.NewSession(0, perm[0:8], 1) // size 8: enumeration infeasible
	s2, _ := overlay.NewSession(1, perm[8:13], 1)
	sessions := []*overlay.Session{s1, s2}
	cg, err := MaxMulticommodityFlowCG(g, treeOracles(t, g, sessions), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cg.Optimal {
		t.Fatal("CG did not converge on size-8 session")
	}
	load := make([]float64, g.NumEdges())
	for i, trees := range cg.Trees {
		for j, tree := range trees {
			if err := tree.Validate(g, sessions[i]); err != nil {
				t.Fatal(err)
			}
			for _, u := range tree.Use() {
				load[u.Edge] += float64(u.Count) * cg.Rates[i][j]
			}
		}
	}
	for e, l := range load {
		if l > g.Edges[e].Capacity+1e-6 {
			t.Fatalf("edge %d overloaded: %v", e, l)
		}
	}
	if cg.Value <= 0 || cg.SessionRates[0] <= 0 {
		t.Fatal("CG produced empty solution")
	}
}

func TestCGUpperBoundsFPTAS(t *testing.T) {
	// The CG optimum must dominate any feasible solution; in particular it
	// bounds the treepack-style greedy seed and the per-session rates must
	// sum consistently.
	r := rng.New(88)
	net, err := topology.Waxman(topology.DefaultWaxman(30), r)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	perm := r.Perm(30)
	s1, _ := overlay.NewSession(0, perm[0:5], 1)
	sessions := []*overlay.Session{s1}
	cg, err := MaxMulticommodityFlowCG(g, treeOracles(t, g, sessions), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	enum, err := MaxMulticommodityFlow(g, fixedOracles(t, g, sessions), 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cg.Value-enum.Value) > 1e-6 {
		t.Fatalf("CG %v vs enum %v", cg.Value, enum.Value)
	}
	sum := 0.0
	for _, rt := range cg.Rates[0] {
		sum += rt
	}
	if math.Abs(sum-cg.SessionRates[0]) > 1e-9 {
		t.Fatal("rates inconsistent")
	}
}

func TestCGEmptyOracles(t *testing.T) {
	if _, err := MaxMulticommodityFlowCG(nil, nil, CGOptions{}); err == nil {
		t.Fatal("empty oracle set accepted")
	}
	if _, err := MaxConcurrentFlowCG(nil, nil, CGOptions{}); err == nil {
		t.Fatal("empty oracle set accepted")
	}
}

func BenchmarkCGM1Size8(b *testing.B) {
	r := rng.New(3)
	net, err := topology.Waxman(topology.DefaultWaxman(40), r)
	if err != nil {
		b.Fatal(err)
	}
	g := net.Graph
	perm := r.Perm(40)
	s1, _ := overlay.NewSession(0, perm[0:8], 1)
	s2, _ := overlay.NewSession(1, perm[8:12], 1)
	sessions := []*overlay.Session{s1, s2}
	var members []graph.NodeID
	for _, s := range sessions {
		members = append(members, s.Members...)
	}
	rt := routing.NewIPRoutes(g, members)
	var oracles []overlay.TreeOracle
	for _, s := range sessions {
		o, err := overlay.NewFixedOracle(g, rt, s)
		if err != nil {
			b.Fatal(err)
		}
		oracles = append(oracles, o)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxMulticommodityFlowCG(g, oracles, CGOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
